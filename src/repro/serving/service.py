"""The asyncio collision-query service.

:class:`CollisionService` turns the offline batch pipeline into an online
system: clients open a *session* (one planning query against one scene —
the unit the paper resets the CHT at, Sec. IV), submit
:class:`~repro.collision.pipeline.Motion` checks, and await verdicts.
Internally, requests pass admission control
(:mod:`~repro.serving.admission`), land on the queue of the worker that
owns their session (:func:`~repro.serving.batching.worker_for_session`),
are coalesced into micro-batches, and execute through the same
:func:`~repro.collision.pipeline.check_motion_batch` path as every offline
harness. Each session owns its detector and CHT predictor, so prediction
state is isolated per planning query and per worker shard.

The service is single-process and cooperative: "workers" are asyncio
tasks, and batch execution itself is synchronous Python (numpy under the
GIL gains nothing from threads here). What the architecture models — and
what the telemetry measures — is the scheduling layer the paper's Sec.
III-E identifies as the real bottleneck: queueing, batching, backpressure,
and prediction fallback under deadline pressure.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from dataclasses import dataclass

from ..collision.detector import CollisionDetector
from ..collision.pipeline import BACKENDS, Motion, check_motion_batch, predict_motion
from ..collision.queries import QueryStats
from ..collision.scheduling import PoseScheduler
from ..core.hashing import CoordHash
from ..core.predictor import CHTPredictor, Predictor
from ..env.scene import Scene
from ..kinematics.robots import RobotModel
from .admission import (
    STATUS_OK,
    STATUS_PREDICTED,
    AdmissionController,
    QueryRequest,
    QueryResult,
)
from .batching import BatchingConfig, MicroBatcher, worker_for_session
from .telemetry import ServiceTelemetry

__all__ = ["ServiceConfig", "Session", "CollisionService"]


def default_predictor_factory() -> Predictor:
    """A fresh COORD predictor with the paper's arm-planning defaults."""
    return CHTPredictor.create(CoordHash(bits_per_axis=4), table_size=4096, s=0.0)


@dataclass(frozen=True)
class ServiceConfig:
    """All service knobs in one place."""

    num_workers: int = 2
    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_bound: int = 64
    policy: str = "reject"
    #: Motion-check execution engine for exact checks (see
    #: :data:`repro.collision.pipeline.BACKENDS`). ``batch`` vectorizes
    #: predictor-free sessions; sessions with a CHT predictor still run
    #: the scalar observe loop regardless.
    backend: str = "scalar"

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be positive")
        if self.queue_bound < 1:
            raise ValueError("queue_bound must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")

    @property
    def batching(self) -> BatchingConfig:
        """The micro-batcher view of this config."""
        return BatchingConfig(max_batch=self.max_batch, max_wait_ms=self.max_wait_ms)


@dataclass
class Session:
    """Per-planning-query serving state: detector, predictor, counters."""

    session_id: str
    detector: CollisionDetector
    predictor: Predictor | None
    scheduler: PoseScheduler | None
    worker: int
    stats: QueryStats

    @property
    def cdqs_executed(self) -> int:
        """Executed CDQs accumulated over the session's lifetime."""
        return self.stats.cdqs_executed


class CollisionService:
    """Async batched collision-query service with backpressure.

    Usage::

        service = CollisionService(ServiceConfig(num_workers=2))
        async with service:
            sid = service.open_session(scene, robot)
            result = await service.submit(sid, Motion(q0, q1, num_poses=12))

    ``submit`` resolves to a :class:`~repro.serving.admission.QueryResult`;
    it never raises for backpressure or deadline misses — those are
    statuses, mirroring how a hardware unit reports rather than traps.
    """

    def __init__(self, config: ServiceConfig | None = None, clock=time.perf_counter):
        self.config = config or ServiceConfig()
        self.clock = clock
        self.telemetry = ServiceTelemetry(clock=clock)
        self.sessions: dict[str, Session] = {}
        self._admission = AdmissionController(self.config.policy, self.telemetry)
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._session_counter = itertools.count()
        self._seq_counter = itertools.count()
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Create worker queues and spawn one batcher task per worker."""
        if self._started:
            raise RuntimeError("service already started")
        self._queues = [
            asyncio.Queue(maxsize=self.config.queue_bound)
            for _ in range(self.config.num_workers)
        ]
        self._workers = [
            asyncio.ensure_future(self._worker_loop(index, queue))
            for index, queue in enumerate(self._queues)
        ]
        self._started = True

    async def stop(self) -> None:
        """Cancel workers; pending requests' futures are cancelled too."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        for queue in self._queues:
            while not queue.empty():
                request = queue.get_nowait()
                if not request.future.done():
                    request.future.cancel()
        self._workers = []
        self._queues = []
        self._started = False

    async def __aenter__(self) -> "CollisionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- sessions ----------------------------------------------------------

    def open_session(
        self,
        scene: Scene,
        robot: RobotModel,
        *,
        representation: str = "obb",
        scheduler: PoseScheduler | None = None,
        predictor: Predictor | None = None,
        use_prediction: bool = True,
        session_id: str | None = None,
    ) -> str:
        """Register a planning query; returns its session id.

        Each session gets its own detector and (by default) a fresh COORD
        predictor — the per-planning-query CHT reset of Sec. IV, realised
        as per-session state instead of a reset instruction.
        """
        if session_id is None:
            session_id = f"s{next(self._session_counter)}"
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} already open")
        if predictor is None and use_prediction:
            predictor = default_predictor_factory()
        self.sessions[session_id] = Session(
            session_id=session_id,
            detector=CollisionDetector(scene, robot, representation=representation),
            predictor=predictor,
            scheduler=scheduler,
            worker=worker_for_session(session_id, self.config.num_workers),
            stats=QueryStats(),
        )
        return session_id

    def session(self, session_id: str) -> Session:
        """Look up an open session."""
        return self.sessions[session_id]

    def close_session(self, session_id: str) -> Session:
        """Drop a session's state; returns it for final inspection."""
        return self.sessions.pop(session_id)

    # -- request path ------------------------------------------------------

    async def submit(
        self,
        session_id: str,
        motion: Motion,
        deadline_ms: float | None = None,
    ) -> QueryResult:
        """Submit one motion check and await its verdict."""
        if not self._started:
            raise RuntimeError("service not started (use 'async with service:')")
        session = self.sessions[session_id]
        request = QueryRequest(
            session_id=session_id,
            motion=motion,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=self.clock(),
            deadline_ms=deadline_ms,
            seq=next(self._seq_counter),
        )
        queue = self._queues[session.worker]
        admitted = await self._admission.admit(queue, request)
        self.telemetry.set_queue_depth(session.worker, queue.qsize())
        if not admitted:
            return request.future.result()
        return await request.future

    # -- execution ---------------------------------------------------------

    async def _worker_loop(self, index: int, queue: asyncio.Queue) -> None:
        batcher = MicroBatcher(queue, self.config.batching, clock=self.clock)
        while True:
            batch = await batcher.next_batch()
            self.telemetry.set_queue_depth(index, queue.qsize())
            self._execute_batch(batch)
            for _ in batch:
                queue.task_done()

    def _execute_batch(self, batch: list[QueryRequest]) -> None:
        """Run one micro-batch: deadline fallbacks, then exact checks."""
        now = self.clock()
        self.telemetry.observe_batch(len(batch))
        exact: list[QueryRequest] = []
        for request in batch:
            if request.future.done():
                continue  # caller vanished (e.g. cancelled while queued)
            if request.deadline_expired(now):
                self._resolve_predicted(request, len(batch))
            else:
                exact.append(request)
        for requests in MicroBatcher.group_by_session(exact).values():
            self._execute_session_group(requests, len(batch))

    def _resolve_predicted(self, request: QueryRequest, batch_size: int) -> None:
        """Deadline fallback: answer from the CHT without executing CDQs."""
        session = self.sessions.get(request.session_id)
        now = self.clock()
        queue_ms = (now - request.enqueued_at) * 1e3
        verdict = None
        if session is not None:
            with self.telemetry.span("predict_fallback"):
                verdict = predict_motion(
                    session.detector, request.motion, session.scheduler, session.predictor
                )
        self.telemetry.count("deadline_fallbacks")
        self.telemetry.count("requests_completed")
        self.telemetry.observe_request(queue_ms, 0.0, queue_ms)
        request.future.set_result(
            QueryResult(
                session_id=request.session_id,
                status=STATUS_PREDICTED,
                colliding=verdict,
                queue_ms=queue_ms,
                total_ms=queue_ms,
                batch_size=batch_size,
            )
        )

    def _execute_session_group(self, requests: list[QueryRequest], batch_size: int) -> None:
        """Exact checks for one session's share of a micro-batch.

        Dispatches through :func:`check_motion_batch` so the serving path
        and the offline harness execute byte-identical CDQ streams.
        """
        session = self.sessions.get(requests[0].session_id)
        started = self.clock()
        if session is None:
            for request in requests:
                request.future.set_exception(
                    KeyError(f"session {request.session_id!r} was closed")
                )
            return
        with self.telemetry.span("batch_execute"):
            result = check_motion_batch(
                session.detector,
                [request.motion for request in requests],
                session.scheduler,
                session.predictor,
                label=session.session_id,
                backend=self.config.backend,
            )
        finished = self.clock()
        session.stats.merge(result.stats)
        execute_ms = (finished - started) * 1e3 / len(requests)
        cdqs_each = result.stats.cdqs_executed // len(requests)
        self.telemetry.count("cdqs_executed", result.stats.cdqs_executed)
        self.telemetry.count("motions_colliding", sum(result.outcomes))
        for request, colliding in zip(requests, result.outcomes):
            queue_ms = (started - request.enqueued_at) * 1e3
            total_ms = (finished - request.enqueued_at) * 1e3
            self.telemetry.count("requests_completed")
            self.telemetry.observe_request(queue_ms, execute_ms, total_ms)
            request.future.set_result(
                QueryResult(
                    session_id=request.session_id,
                    status=STATUS_OK,
                    colliding=colliding,
                    queue_ms=queue_ms,
                    execute_ms=execute_ms,
                    total_ms=total_ms,
                    batch_size=batch_size,
                    cdqs_executed=cdqs_each,
                )
            )
