"""The asyncio collision-query service.

:class:`CollisionService` turns the offline batch pipeline into an online
system: clients open a *session* (one planning query against one scene —
the unit the paper resets the CHT at, Sec. IV), submit
:class:`~repro.collision.pipeline.Motion` checks, and await verdicts.
Internally, requests pass admission control
(:mod:`~repro.serving.admission`), land on the queue of the worker that
owns their session (:func:`~repro.serving.batching.worker_for_session`),
are coalesced into micro-batches, and execute through the same
:func:`~repro.collision.pipeline.check_motion_batch` path as every offline
harness. Each session owns its detector and CHT predictor, so prediction
state is isolated per planning query and per worker shard — unless the
service runs with ``ServiceConfig(shared_cht=True)``, in which case
sessions against the same (scene, robot, representation) share one
:class:`~repro.sharedcht.SharedCHT` bank (the paper's single COPU table
serving every lane): they are pinned to the same worker, their motions
coalesce into one predict-gated kernel invocation per micro-batch, and
collision history learned by any of them warms all of them.

The service is single-process and cooperative: "workers" are asyncio
tasks, and batch execution itself is synchronous Python (numpy under the
GIL gains nothing from threads here). What the architecture models — and
what the telemetry measures — is the scheduling layer the paper's Sec.
III-E identifies as the real bottleneck: queueing, batching, backpressure,
and prediction fallback under deadline pressure.

Execution is fault-tolerant (:mod:`repro.resilience`): worker loops run
under a supervisor that fails only the in-flight batch and restarts the
loop; exact checks walk a circuit-breaker-guarded degradation ladder
(batch backend → scalar backend → CHT-predicted verdict); and shutdown
drains every queued request with a terminal ``"shutdown"`` status, so an
awaiter is never left hung — not by a crash, not by ``stop()``.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import time

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..collision.detector import CollisionDetector
from ..collision.pipeline import (
    BACKENDS,
    BatchResult,
    Motion,
    check_continuous_batch,
    check_motion_batch,
    check_pose_batch,
    predict_motion,
    predict_pose,
)
from ..collision.queries import QueryStats
from ..collision.scheduling import PoseScheduler
from ..core.hashing import CoordHash
from ..core.predictor import CHTPredictor, Predictor
from ..env.scene import Scene, SceneMutation
from ..kinematics.robots import RobotModel
from ..resilience import (
    DegradationLadder,
    FaultInjected,
    FaultInjector,
    WorkerCrashFault,
)
from ..sharedcht import SegmentCorruptionError, SegmentManager, SharedCHT
from ..sharedcht.durability import inject_counter_corruption, inject_torn_commit
from .admission import (
    QUERY_TYPES,
    STATUS_OK,
    STATUS_PREDICTED,
    STATUS_SHUTDOWN,
    AdmissionController,
    QueryRequest,
    QueryResult,
)
from .batching import BatchingConfig, MicroBatcher, worker_for_session
from .telemetry import ServiceTelemetry

__all__ = [
    "WORKER_ERROR_POLICIES",
    "ServiceConfig",
    "Session",
    "SharedTableEntry",
    "CollisionService",
    "scene_bank_key",
]

#: What happens to a batch whose worker loop dies mid-execution:
#: ``predict`` resolves its requests with degraded CHT verdicts,
#: ``error`` propagates the failure to the awaiters.
WORKER_ERROR_POLICIES = ("predict", "error")


def default_predictor_factory() -> Predictor:
    """A fresh COORD predictor with the paper's arm-planning defaults."""
    return CHTPredictor.create(CoordHash(bits_per_axis=4), table_size=4096, s=0.0)


def scene_bank_key(scene: Scene, robot: RobotModel, representation: str) -> str:
    """Stable content key for a (scene, robot, representation) triple.

    Hashes the scene's obstacle-content digest
    (:meth:`~repro.env.scene.Scene.content_digest`) plus the robot name
    and volume representation, so the same physical environment maps to
    the same shared bank across service *restarts* — the anchor for
    snapshot/restore: a warm-restarted service re-derives the same key
    and re-attaches the same collision history. Because the digest is
    pure geometry content, a scene *mutation* changes the key, which is
    exactly how dynamic scenes invalidate their shared banks: the edited
    scene resolves to a fresh (cold) bank, and history learned against
    the old geometry is never consulted again. A 16-hex-digit prefix
    keeps snapshot filenames short; collisions are astronomically
    unlikely at fleet scale (64 bits over scene content).
    """
    digest = hashlib.sha1()
    digest.update(representation.encode("utf-8"))
    digest.update(robot.name.encode("utf-8"))
    digest.update(scene.content_digest().encode("ascii"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ServiceConfig:
    """All service knobs in one place."""

    num_workers: int = 2
    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_bound: int = 64
    policy: str = "reject"
    #: Motion-check execution engine for exact checks (see
    #: :data:`repro.collision.pipeline.BACKENDS`). ``batch`` vectorizes
    #: both predictor-free sessions (whole-motion kernel) and CHT
    #: sessions (predict-gated kernel, bit-identical to the scalar
    #: observe loop); it also batches the CHT-fallback rung's
    #: predicted-only verdicts. This is the *top rung* of the degradation
    #: ladder — on repeated failure the service steps down
    #: (batch → scalar → CHT-predicted).
    backend: str = "scalar"
    #: Fate of a batch whose worker loop crashes mid-flight (see
    #: :data:`WORKER_ERROR_POLICIES`).
    on_worker_error: str = "predict"
    #: Consecutive backend failures before that rung's breaker opens.
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before admitting a recovery probe.
    breaker_recovery_s: float = 0.5
    #: Share one CHT bank per (scene, robot, representation) across
    #: sessions (:mod:`repro.sharedcht`). Shared sessions are pinned to
    #: one worker and their motions coalesce into cross-session kernel
    #: invocations; an explicitly passed ``predictor=`` always stays
    #: private.
    shared_cht: bool = False
    #: Entry count of each shared bank (paper default: 4096 for arms).
    shared_table_size: int = 4096
    #: Prediction strategy ``S`` of shared banks (``0`` = most aggressive).
    shared_s: float = 0.0
    #: Update frequency ``U`` of shared banks.
    shared_u: float = 1.0
    #: Snapshot directory for shared-bank durability (``shared_cht=True``
    #: only). When set, :meth:`CollisionService.stop` writes every shared
    #: bank to ``<cht_dir>/cht-<scene_key>.npz`` (atomic write-rename,
    #: checksum-stamped) and bank creation first tries to *restore* from
    #: that file — the warm-restart path of ``repro serve --restore-cht``.
    cht_dir: str | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be positive")
        if self.queue_bound < 1:
            raise ValueError("queue_bound must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.on_worker_error not in WORKER_ERROR_POLICIES:
            raise ValueError(
                f"on_worker_error must be one of {WORKER_ERROR_POLICIES}, "
                f"got {self.on_worker_error!r}"
            )
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be positive")
        if self.breaker_recovery_s < 0.0:
            raise ValueError("breaker_recovery_s must be non-negative")
        if self.shared_table_size < 1:
            raise ValueError("shared_table_size must be positive")
        if self.shared_s < 0.0:
            raise ValueError("shared_s must be non-negative")
        if not 0.0 <= self.shared_u <= 1.0:
            raise ValueError("shared_u must be in [0, 1]")

    @property
    def exact_rungs(self) -> tuple:
        """Exact-execution ladder rungs, fastest first."""
        return ("batch", "scalar") if self.backend == "batch" else ("scalar",)

    @property
    def batching(self) -> BatchingConfig:
        """The micro-batcher view of this config."""
        return BatchingConfig(max_batch=self.max_batch, max_wait_ms=self.max_wait_ms)


@dataclass
class SharedTableEntry:
    """One scene-keyed shared CHT bank and the sessions reading it.

    Created lazily by :meth:`CollisionService.open_session` under
    ``shared_cht=True``: the first session against a (scene, robot,
    representation) triple allocates the bank, later ones attach to it.
    The entry carries the canonical detector/scheduler used for coalesced
    cross-session kernel invocations, and its ``stats`` accumulate the
    exact-execution statistics of every coalesced group (per-session
    attribution is impossible once motions from several sessions share
    one kernel pass).
    """

    entry_id: str
    table: SharedCHT
    predictor: CHTPredictor
    detector: CollisionDetector
    scheduler: PoseScheduler | None
    stats: QueryStats
    sessions: set[str]
    #: Content key of the (scene, robot, representation) triple — the
    #: stable identity snapshots are filed under (:func:`scene_bank_key`).
    scene_key: str = ""
    #: True while the bank's counters failed checksum verification and a
    #: background rebuild is pending; quarantined banks serve *exact*
    #: predictor-free checks (never predictions from corrupt history).
    quarantined: bool = False
    #: Times this bank was rebuilt after corruption.
    rebuilds: int = 0
    #: Restore provenance when the bank was warm-started from a snapshot
    #: (path, restored occupancy, verified checksum), else None.
    restored: dict | None = None

    def hit_rate(self) -> float:
        """Fraction of predictions that guessed "colliding"."""
        made = self.stats.predictions_made
        return self.stats.predicted_colliding / made if made else 0.0


@dataclass
class Session:
    """Per-planning-query serving state: detector, predictor, counters."""

    session_id: str
    detector: CollisionDetector
    predictor: Predictor | None
    scheduler: PoseScheduler | None
    worker: int
    stats: QueryStats
    #: Scene-keyed shared bank this session reads, when ``shared_cht`` is
    #: on and the session did not bring its own predictor.
    shared: SharedTableEntry | None = None

    @property
    def cdqs_executed(self) -> int:
        """Executed CDQs accumulated over the session's lifetime."""
        return self.stats.cdqs_executed


class CollisionService:
    """Async batched collision-query service with backpressure.

    Usage::

        service = CollisionService(ServiceConfig(num_workers=2))
        async with service:
            sid = service.open_session(scene, robot)
            result = await service.submit(sid, Motion(q0, q1, num_poses=12))

    ``submit`` resolves to a :class:`~repro.serving.admission.QueryResult`;
    it never raises for backpressure, deadline misses, degraded execution,
    or shutdown — those are statuses, mirroring how a hardware unit
    reports rather than traps.

    ``faults`` arms the deterministic chaos harness: an injected ``crash``
    kills a worker loop mid-batch (the supervisor restarts it), an
    injected ``exception`` fails an execution rung (exercising the
    degradation ladder), and an injected ``stall`` freezes a worker loop
    for its configured delay. Injection scope indices are the service's
    monotonically increasing batch numbers.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = time.perf_counter,
        faults: FaultInjector | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.clock = clock
        self.faults = faults
        self.telemetry = ServiceTelemetry(clock=clock)
        self.sessions: dict[str, Session] = {}
        self._admission = AdmissionController(self.config.policy, self.telemetry)
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._batchers: dict[int, MicroBatcher] = {}
        self._session_counter = itertools.count()
        self._seq_counter = itertools.count()
        self._batch_counter = itertools.count()
        self._ladder = DegradationLadder(
            self.config.exact_rungs,
            failure_threshold=self.config.breaker_threshold,
            recovery_s=self.config.breaker_recovery_s,
            clock=clock,
            counters=self.telemetry.resilience,
        )
        self.telemetry.set_breaker_provider(self._ladder.snapshot)
        self.telemetry.set_cht_provider(self._cht_snapshot)
        self.telemetry.set_broad_phase_provider(self._broad_phase_snapshot)
        #: Scene-keyed shared CHT banks (``shared_cht=True`` only) and the
        #: lifecycle manager owning their segments. Keys are stable
        #: content digests (:func:`scene_bank_key`), so the same physical
        #: scene resolves to the same bank across restarts.
        self._shared_tables: dict[str, SharedTableEntry] = {}
        self._segments = SegmentManager()
        self._shared_counter = itertools.count()
        #: In-flight background bank rebuilds (corruption recovery).
        self._rebuild_tasks: set[asyncio.Task] = set()
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Create worker queues and spawn one supervised task per worker."""
        if self._started:
            raise RuntimeError("service already started")
        self._queues = [
            asyncio.Queue(maxsize=self.config.queue_bound)
            for _ in range(self.config.num_workers)
        ]
        self._batchers = {}
        self._workers = [
            asyncio.ensure_future(self._supervised_worker(index, queue))
            for index, queue in enumerate(self._queues)
        ]
        self._started = True

    async def stop(self) -> None:
        """Stop workers and drain every pending request as ``shutdown``.

        Requests still queued — or already popped into a half-collected
        micro-batch — are resolved with a terminal
        :data:`~repro.serving.admission.STATUS_SHUTDOWN` result rather
        than cancelled, so every awaiter gets an answer it can branch on.
        """
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        drained = 0
        for batcher in self._batchers.values():
            for request in batcher.pending:
                drained += self._resolve_shutdown(request)
            batcher.pending = []
        for queue in self._queues:
            while not queue.empty():
                drained += self._resolve_shutdown(queue.get_nowait())
        if drained:
            self.telemetry.resilience.count("shutdown_drained", drained)
        self._workers = []
        self._queues = []
        self._batchers = {}
        # Let in-flight corruption rebuilds finish (they re-point entries
        # at fresh banks) so the snapshot pass below sees final state.
        for task in list(self._rebuild_tasks):
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception as error:
                self.telemetry.resilience.record_error("cht_rebuild", error)
        self._rebuild_tasks = set()
        # Durability: snapshot every healthy shared bank before releasing
        # it, so the collision history survives the restart
        # (``repro serve --restore-cht``). Quarantined banks are skipped —
        # persisting counters that failed their checksum would launder
        # corruption into the next process.
        if self.config.cht_dir is not None:
            for entry in self._shared_tables.values():
                if entry.quarantined:
                    continue
                if entry.table.occupancy() == 0.0:
                    # An untouched bank (e.g. the fresh one a scene
                    # mutation re-keyed to) has no history to persist;
                    # snapshotting it would only make the next restart
                    # report a "restored" bank with zero warmth.
                    continue
                path = self._snapshot_path(entry.scene_key)
                assert path is not None
                try:
                    entry.table.save(path)
                except (OSError, SegmentCorruptionError, ValueError) as error:
                    self.telemetry.resilience.record_error("cht_snapshot", error)
                    self.telemetry.resilience.count("snapshot_failures")
        # Release every shared bank: handles degrade to private copies of
        # their last counters (detach), then the segments are unlinked so
        # a stopped service never leaves /dev/shm entries behind.
        for entry in self._shared_tables.values():
            entry.table.detach()
        self._shared_tables = {}
        self._segments.shutdown()
        self._started = False

    async def __aenter__(self) -> "CollisionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- sessions ----------------------------------------------------------

    def open_session(
        self,
        scene: Scene,
        robot: RobotModel,
        *,
        representation: str = "obb",
        scheduler: PoseScheduler | None = None,
        predictor: Predictor | None = None,
        use_prediction: bool = True,
        session_id: str | None = None,
    ) -> str:
        """Register a planning query; returns its session id.

        Each session gets its own detector and (by default) a fresh COORD
        predictor — the per-planning-query CHT reset of Sec. IV, realised
        as per-session state instead of a reset instruction. Under
        ``shared_cht=True`` the default predictor instead reads the
        scene-keyed shared bank (created on first use), and the session is
        pinned to the bank's worker so same-scene sessions coalesce; an
        explicit ``predictor=`` or ``use_prediction=False`` opts the
        session out of sharing.
        """
        if session_id is None:
            session_id = f"s{next(self._session_counter)}"
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} already open")
        detector = CollisionDetector(scene, robot, representation=representation)
        shared: SharedTableEntry | None = None
        if predictor is None and use_prediction:
            if self.config.shared_cht:
                shared = self._shared_entry(scene, robot, representation, detector, scheduler)
                shared.sessions.add(session_id)
                predictor = shared.predictor
            else:
                predictor = default_predictor_factory()
        worker = (
            worker_for_session(shared.entry_id, self.config.num_workers)
            if shared is not None
            else worker_for_session(session_id, self.config.num_workers)
        )
        self.sessions[session_id] = Session(
            session_id=session_id,
            detector=detector,
            predictor=predictor,
            scheduler=scheduler,
            worker=worker,
            stats=QueryStats(),
            shared=shared,
        )
        return session_id

    def _shared_entry(
        self,
        scene: Scene,
        robot: RobotModel,
        representation: str,
        detector: CollisionDetector,
        scheduler: PoseScheduler | None,
    ) -> SharedTableEntry:
        """The shared bank for a (scene, robot, representation) triple.

        The first session's detector and scheduler become the entry's
        canonical pair, used for every coalesced cross-session kernel
        invocation (identical scene and robot make the per-session
        detectors interchangeable; the canonical scheduler keeps the CDQ
        stream deterministic however sessions are mixed in a batch).
        """
        key = scene_bank_key(scene, robot, representation)
        entry = self._shared_tables.get(key)
        if entry is None:
            table, restored = self._build_bank(key)
            entry = SharedTableEntry(
                entry_id=f"shared{next(self._shared_counter)}",
                table=table,
                predictor=CHTPredictor(CoordHash(bits_per_axis=4), table),
                detector=detector,
                scheduler=scheduler,
                stats=QueryStats(),
                sessions=set(),
                scene_key=key,
                restored=restored,
            )
            self._shared_tables[key] = entry
        return entry

    def _snapshot_path(self, scene_key: str) -> "Path | None":
        """Where this scene's bank snapshot lives (None without a cht_dir)."""
        if self.config.cht_dir is None:
            return None
        return Path(self.config.cht_dir) / f"cht-{scene_key}.npz"

    def _fresh_bank(self) -> SharedCHT:
        """A zeroed shared bank with this service's configured geometry."""
        return SharedCHT.create(
            size=self.config.shared_table_size,
            s=self.config.shared_s,
            u=self.config.shared_u,
            manager=self._segments,
        )

    def _build_bank(self, scene_key: str) -> "tuple[SharedCHT, dict | None]":
        """Create a scene's shared bank, warm-restoring it when possible.

        With ``cht_dir`` set and a snapshot on disk for this scene key,
        the bank is loaded through the checksum-validated restore path
        (:meth:`~repro.sharedcht.SharedCHT.load`); a missing snapshot,
        a corrupt/unreadable one, or one whose geometry no longer matches
        the service config falls back to a zeroed bank — a failed restore
        must never block serving, it only costs warmth.
        """
        path = self._snapshot_path(scene_key)
        if path is not None:
            try:
                table = SharedCHT.load(path, manager=self._segments)
            except FileNotFoundError:
                pass  # cold start: no snapshot for this scene yet
            except (SegmentCorruptionError, OSError, ValueError, KeyError) as error:
                self.telemetry.resilience.record_error("cht_restore", error)
                self.telemetry.resilience.count("snapshot_failures")
            else:
                spec = table.spec
                if (
                    spec.size == self.config.shared_table_size
                    and spec.s == self.config.shared_s
                    and spec.u == self.config.shared_u
                ):
                    self.telemetry.resilience.count("banks_restored")
                    restored = {
                        "path": str(path),
                        "occupancy": table.occupancy(),
                        "checksum": table.stored_checksum,
                    }
                    return table, restored
                # The snapshot predates a reconfiguration; its counters
                # are meaningless under the new geometry. Discard it.
                table.unlink()
        return self._fresh_bank(), None

    def session(self, session_id: str) -> Session:
        """Look up an open session."""
        return self.sessions[session_id]

    def close_session(self, session_id: str) -> Session:
        """Drop a session's state; returns it for final inspection.

        A shared bank outlives its sessions on purpose — the warm table
        is the whole point of sharing — and is unlinked at :meth:`stop`.
        """
        session = self.sessions.pop(session_id)
        if session.shared is not None:
            session.shared.sessions.discard(session_id)
        return session

    # -- request path ------------------------------------------------------

    async def submit(
        self,
        session_id: str,
        motion: "Motion | SceneMutation",
        deadline_ms: float | None = None,
        query_type: str = "motion",
    ) -> QueryResult:
        """Submit one check and await its verdict.

        ``query_type`` selects the execution semantics (see
        :data:`~repro.serving.admission.QUERY_TYPES`): ``motion`` is the
        discrete motion check, ``pose`` checks only ``motion.start``
        (batched pose-environment queries), ``continuous`` runs
        conservative advancement over the segment, and ``mutate`` applies
        a :class:`~repro.env.scene.SceneMutation` (passed in place of a
        motion) to the session's scene — refitting its spatial index and
        invalidating collision history keyed to the old geometry.
        Requests of different types never share a micro-batch kernel
        invocation.
        """
        if not self._started:
            raise RuntimeError("service not started (use 'async with service:')")
        if query_type not in QUERY_TYPES:
            raise ValueError(f"query_type must be one of {QUERY_TYPES}, got {query_type!r}")
        session = self.sessions[session_id]
        self.telemetry.count(f"requests_{query_type}")
        request = QueryRequest(
            session_id=session_id,
            motion=motion,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=self.clock(),
            deadline_ms=deadline_ms,
            seq=next(self._seq_counter),
            query_type=query_type,
        )
        queue = self._queues[session.worker]
        admitted = await self._admission.admit(queue, request)
        self.telemetry.set_queue_depth(session.worker, queue.qsize())
        if not admitted:
            return request.future.result()
        return await request.future

    # -- execution ---------------------------------------------------------

    async def _supervised_worker(self, index: int, queue: asyncio.Queue) -> None:
        """Keep the worker loop alive: a crash fails one batch, not the shard.

        Any exception escaping the loop (a bug in an execution path, an
        injected :class:`~repro.resilience.WorkerCrashFault`) has already
        had its in-flight batch resolved by the loop's error handler; the
        supervisor just counts the restart and re-enters the loop with a
        fresh batcher, so queued clients keep being served.
        """
        while True:
            try:
                await self._worker_loop(index, queue)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                self.telemetry.resilience.record_error("worker_loop", error)
                self.telemetry.resilience.count("worker_restarts")

    async def _worker_loop(self, index: int, queue: asyncio.Queue) -> None:
        batcher = MicroBatcher(queue, self.config.batching, clock=self.clock)
        self._batchers[index] = batcher
        while True:
            batch = await batcher.next_batch()
            self.telemetry.set_queue_depth(index, queue.qsize())
            batch_index = next(self._batch_counter)
            if self.faults is not None:
                stall = self.faults.poll("stall", batch_index)
                if stall is not None:
                    self.telemetry.resilience.count("faults_injected")
                    await asyncio.sleep(stall.delay_s)
            try:
                if self.faults is not None and self.faults.poll("crash", batch_index):
                    self.telemetry.resilience.count("faults_injected")
                    raise WorkerCrashFault(
                        f"injected crash in worker {index} at batch {batch_index}"
                    )
                self._execute_batch(batch, batch_index)
            except Exception as error:
                self._fail_batch(batch, error)
                raise  # the supervisor restarts this loop
            finally:
                # The batch is fully processed (or terminally failed);
                # release the batcher's ownership. A cancellation landing
                # on an await above leaves `pending` set, so stop() can
                # drain the half-processed batch to `shutdown`.
                batcher.pending = []
                for _ in batch:
                    queue.task_done()

    def _fail_batch(self, batch: list[QueryRequest], error: BaseException) -> None:
        """Terminal handling for a batch whose worker loop died mid-flight.

        Per ``config.on_worker_error``, unresolved requests either degrade
        to CHT-predicted verdicts (``predict``) or receive the failure
        itself (``error``). Either way no future is left pending.
        """
        self.telemetry.resilience.count("worker_errors")
        for request in batch:
            if request.future.done():
                continue
            if self.config.on_worker_error == "predict":
                self._resolve_predicted(request, len(batch), degraded=True)
            else:
                request.future.set_exception(error)

    def _resolve_shutdown(self, request: QueryRequest) -> int:
        """Resolve one abandoned request with a terminal shutdown status."""
        if request.future.done():
            return 0
        queue_ms = (self.clock() - request.enqueued_at) * 1e3
        request.future.set_result(
            QueryResult(
                session_id=request.session_id,
                status=STATUS_SHUTDOWN,
                queue_ms=queue_ms,
                total_ms=queue_ms,
            )
        )
        return 1

    def _execute_batch(self, batch: list[QueryRequest], batch_index: int) -> None:
        """Run one micro-batch: deadline fallbacks, then exact checks.

        Exact requests group by *execution context*: sessions reading the
        same shared bank merge into one group (their motions hit the
        predict-gated kernel in a single invocation — the cross-session
        micro-batch), everything else groups per session as before. The
        group key also carries the request's query type, so each group
        drains through a single kernel (motion, pose, or continuous) —
        micro-batching per type, never mixing semantics in one invocation.
        """
        now = self.clock()
        self.telemetry.observe_batch(len(batch))
        exact: list[QueryRequest] = []
        for request in batch:
            if request.future.done():
                continue  # caller vanished (e.g. cancelled while queued)
            if request.query_type == "mutate":
                # Scene edits never fall back to prediction (there is no
                # verdict to speculate) and never batch with checks: they
                # apply immediately, before this batch's exact work reads
                # the scene.
                self._execute_mutation(request, len(batch))
            elif request.deadline_expired(now):
                self._resolve_predicted(request, len(batch))
            else:
                exact.append(request)
        groups: dict[tuple[str, str], list[QueryRequest]] = {}
        for request in exact:
            session = self.sessions.get(request.session_id)
            shared = session.shared if session is not None else None
            context = shared.entry_id if shared is not None else request.session_id
            groups.setdefault((context, request.query_type), []).append(request)
        for requests in groups.values():
            self._execute_session_group(requests, len(batch), batch_index)

    def _resolve_predicted(
        self, request: QueryRequest, batch_size: int, degraded: bool = False
    ) -> None:
        """Answer from the CHT without executing CDQs.

        Two paths land here: the deadline fallback (the request expired
        while queued) and the degradation ladder's floor (every exact
        backend failed or is circuit-broken); ``degraded`` picks the
        counter so telemetry distinguishes them.
        """
        session = self.sessions.get(request.session_id)
        now = self.clock()
        queue_ms = (now - request.enqueued_at) * 1e3
        verdict = None
        # A ``mutate`` request has no verdict to speculate: when one lands
        # here (a worker died before applying it), it resolves as
        # predicted-with-no-verdict and the caller retries the edit.
        if session is not None and request.query_type != "mutate":
            with self.telemetry.span("predict_fallback"):
                if request.query_type == "pose":
                    verdict = predict_pose(
                        session.detector, request.motion.start, session.predictor
                    )
                else:
                    # Continuous requests speculate over the discretized
                    # motion: the CHT is keyed by link coordinates either
                    # way, so the same probe answers both semantics.
                    verdict = predict_motion(
                        session.detector,
                        request.motion,
                        session.scheduler,
                        session.predictor,
                        backend=self.config.backend,
                    )
        if degraded:
            self.telemetry.resilience.count("degraded_verdicts")
        else:
            self.telemetry.count("deadline_fallbacks")
        self.telemetry.count("requests_completed")
        self.telemetry.observe_request(queue_ms, 0.0, queue_ms)
        request.future.set_result(
            QueryResult(
                session_id=request.session_id,
                status=STATUS_PREDICTED,
                colliding=verdict,
                queue_ms=queue_ms,
                total_ms=queue_ms,
                batch_size=batch_size,
            )
        )

    def _execute_mutation(self, request: QueryRequest, batch_size: int) -> None:
        """Apply one scene edit and invalidate history keyed to the old scene.

        The mutation runs through :meth:`~repro.env.scene.SceneMutation.apply`
        — the scene's packed obstacle set and spatial index refit in place
        (telemetry span ``scene_mutate``). Afterwards, every open session
        reading the mutated scene has its collision history invalidated:
        the old geometry's verdicts are stale the instant an obstacle
        moves. Private CHT predictors reset their table; shared sessions
        re-key to the bank of the *new* content digest (created cold on
        first use), leaving the old bank to age out at :meth:`stop`.
        Re-keyed sessions keep their original worker pinning, so only
        cross-session coalescing — not correctness — is lost until the
        sessions reopen.
        """
        session = self.sessions.get(request.session_id)
        if session is None:
            request.future.set_exception(
                KeyError(f"session {request.session_id!r} was closed")
            )
            return
        mutation = request.motion
        started = self.clock()
        if not isinstance(mutation, SceneMutation):
            request.future.set_exception(
                TypeError(
                    "mutate requests carry a SceneMutation, "
                    f"got {type(mutation).__name__}"
                )
            )
            return
        try:
            with self.telemetry.span("scene_mutate"):
                mutation.apply(session.detector.scene)
        except (IndexError, ValueError) as error:
            # A bad index or an empty-scene removal is the caller's error,
            # not a service fault: propagate it without failing the batch.
            request.future.set_exception(error)
            return
        self.telemetry.count("scene_mutations")
        invalidated = self._invalidate_scene_history(session.detector.scene)
        if invalidated:
            self.telemetry.count("cht_invalidations", invalidated)
        finished = self.clock()
        queue_ms = (started - request.enqueued_at) * 1e3
        execute_ms = (finished - started) * 1e3
        total_ms = (finished - request.enqueued_at) * 1e3
        self.telemetry.count("requests_completed")
        self.telemetry.observe_request(queue_ms, execute_ms, total_ms)
        request.future.set_result(
            QueryResult(
                session_id=request.session_id,
                status=STATUS_OK,
                colliding=None,
                queue_ms=queue_ms,
                execute_ms=execute_ms,
                total_ms=total_ms,
                batch_size=batch_size,
            )
        )

    def _invalidate_scene_history(self, scene: Scene) -> int:
        """Drop collision history learned against a scene's old geometry.

        Returns the number of sessions whose predictor state was
        invalidated. Shared sessions migrate to the bank keyed by the
        scene's new content digest (cold unless a snapshot for that exact
        geometry exists); private CHT predictors reset in place — the
        serving realisation of the paper's CHT-reset-on-re-measurement
        semantics (Sec. IV), triggered by a scene edit instead.
        """
        invalidated = 0
        for session in self.sessions.values():
            if session.detector.scene is not scene:
                continue
            if session.shared is not None:
                old = session.shared
                old.sessions.discard(session.session_id)
                entry = self._shared_entry(
                    scene,
                    session.detector.robot,
                    session.detector.representation,
                    session.detector,
                    session.scheduler,
                )
                entry.sessions.add(session.session_id)
                session.shared = entry
                session.predictor = entry.predictor
                invalidated += 1
            elif isinstance(session.predictor, CHTPredictor):
                session.predictor.reset()
                invalidated += 1
        return invalidated

    def _check_bank(self, entry: SharedTableEntry, batch_index: int) -> bool:
        """Verify a shared bank's integrity before predicting from it.

        Runs the epoch-fence + checksum check (:meth:`SharedCHT.verify`)
        once per group execution: a torn commit left by a dead writer is
        rolled back exactly (counted), while a checksum mismatch — counters
        scribbled outside the fence — quarantines the bank and schedules a
        background rebuild. Returns True when the bank is safe to predict
        from. Armed ``torn_write`` / ``corrupt_segment`` faults fire here,
        so the chaos harness exercises both detection paths on the live
        serving loop.
        """
        if self.faults is not None:
            if self.faults.poll("torn_write", batch_index) is not None:
                self.telemetry.resilience.count("faults_injected")
                inject_torn_commit(entry.table)
            if self.faults.poll("corrupt_segment", batch_index) is not None:
                self.telemetry.resilience.count("faults_injected")
                inject_counter_corruption(entry.table)
        if entry.quarantined:
            return False
        try:
            rolled = entry.table.verify()
        except SegmentCorruptionError as error:
            self.telemetry.resilience.record_error("shared_cht", error)
            self.telemetry.resilience.count("segment_corruptions")
            self.telemetry.resilience.count("banks_quarantined")
            entry.quarantined = True
            task = asyncio.ensure_future(self._rebuild_bank(entry))
            self._rebuild_tasks.add(task)
            task.add_done_callback(self._rebuild_tasks.discard)
            return False
        if rolled:
            self.telemetry.resilience.count("torn_commits_rolled_back")
        return True

    async def _rebuild_bank(self, entry: SharedTableEntry) -> None:
        """Replace a quarantined bank with a fresh zeroed one.

        The corrupt segment is unlinked and the entry (and its predictor)
        re-pointed at a new bank: collision history restarts cold for this
        scene — the paper's CHT-reset semantics, triggered by integrity
        loss instead of re-measurement — and sessions resume predicting
        on the next batch.
        """
        old = entry.table
        table = self._fresh_bank()
        entry.table = table
        entry.predictor.table = table
        entry.quarantined = False
        entry.rebuilds += 1
        entry.restored = None
        old.unlink()
        self.telemetry.resilience.count("banks_rebuilt")

    def _execute_session_group(
        self, requests: list[QueryRequest], batch_size: int, batch_index: int
    ) -> None:
        """Exact checks for one execution group's share of a micro-batch.

        A group is either one session's requests or — under shared CHT —
        every request in the batch whose session reads the same shared
        bank (the cross-session coalesced invocation); all of a group's
        requests carry the same query type. Dispatches through
        :func:`check_motion_batch`, :func:`check_pose_batch` or
        :func:`check_continuous_batch` so the serving path and the offline
        harnesses execute byte-identical CDQ streams. The group walks the
        degradation ladder: each exact rung whose breaker admits it is
        attempted in order (``batch`` → ``scalar``); a rung failure feeds
        its breaker and falls through; when no exact rung remains, every
        request degrades to the CHT-predicted verdict.
        """
        session = self.sessions.get(requests[0].session_id)
        if session is None:
            for request in requests:
                request.future.set_exception(
                    KeyError(f"session {request.session_id!r} was closed")
                )
            return
        shared = session.shared
        predictor: Predictor | None
        if shared is not None:
            if self.faults is not None and self.faults.poll("kill_mid_publish", batch_index):
                # The serving analogue of a publisher dying mid-commit:
                # tear the bank's fence open and kill this worker loop.
                # The next group execution's verify() rolls the commit
                # back; the supervisor restarts the loop.
                self.telemetry.resilience.count("faults_injected")
                inject_torn_commit(shared.table)
                raise WorkerCrashFault(
                    f"injected mid-publish death at batch {batch_index}"
                )
            detector, scheduler = shared.detector, shared.scheduler
            label = shared.entry_id
            # Quarantined (or just-corrupted) banks answer *exact* but
            # predictor-free: correct verdicts always beat fast guesses
            # from counters that failed their checksum.
            predictor = shared.predictor if self._check_bank(shared, batch_index) else None
            if len({request.session_id for request in requests}) > 1:
                self.telemetry.count("cross_session_batches")
        else:
            detector, scheduler = session.detector, session.scheduler
            predictor = session.predictor
            label = session.session_id
        for rung in self._ladder.plan():
            started = self.clock()
            try:
                with self.telemetry.span("batch_execute"):
                    if self.faults is not None and self.faults.poll("exception", batch_index):
                        self.telemetry.resilience.count("faults_injected")
                        raise FaultInjected(
                            f"injected kernel exception at batch {batch_index}"
                        )
                    query_type = requests[0].query_type
                    if query_type == "pose":
                        result = check_pose_batch(
                            detector,
                            [request.motion.start for request in requests],
                            predictor,
                            label=label,
                            backend=rung,
                        )
                    elif query_type == "continuous":
                        result = check_continuous_batch(
                            detector,
                            [request.motion for request in requests],
                            predictor,
                            label=label,
                            backend=rung,
                        )
                    else:
                        result = check_motion_batch(
                            detector,
                            [request.motion for request in requests],
                            scheduler,
                            predictor,
                            label=label,
                            backend=rung,
                        )
            except Exception as error:
                self._ladder.record(rung, False)
                self.telemetry.resilience.record_error(f"backend_{rung}", error)
                self.telemetry.resilience.count("backend_failures")
                continue
            self._ladder.record(rung, True)
            self._resolve_exact(requests, result, started, batch_size)
            return
        # Every exact rung failed or is circuit-broken: degrade to the CHT.
        for request in requests:
            self._resolve_predicted(request, batch_size, degraded=True)

    def _resolve_exact(
        self,
        requests: list[QueryRequest],
        result: BatchResult,
        started: float,
        batch_size: int,
    ) -> None:
        """Resolve one execution group's futures from an exact batch result."""
        session = self.sessions.get(requests[0].session_id)
        finished = self.clock()
        if session is not None:
            if session.shared is not None:
                # Coalesced groups span sessions; the kernel's statistics
                # are attributed to the shared bank (splitting them per
                # session would double-count or misattribute CDQ work).
                session.shared.stats.merge(result.stats)
            else:
                session.stats.merge(result.stats)
        execute_ms = (finished - started) * 1e3 / len(requests)
        cdqs_each = result.stats.cdqs_executed // len(requests)
        self.telemetry.count("cdqs_executed", result.stats.cdqs_executed)
        self.telemetry.count("motions_colliding", sum(result.outcomes))
        for request, colliding in zip(requests, result.outcomes):
            queue_ms = (started - request.enqueued_at) * 1e3
            total_ms = (finished - request.enqueued_at) * 1e3
            self.telemetry.count("requests_completed")
            self.telemetry.observe_request(queue_ms, execute_ms, total_ms)
            request.future.set_result(
                QueryResult(
                    session_id=request.session_id,
                    status=STATUS_OK,
                    colliding=colliding,
                    queue_ms=queue_ms,
                    execute_ms=execute_ms,
                    total_ms=total_ms,
                    batch_size=batch_size,
                    cdqs_executed=cdqs_each,
                )
            )

    # -- telemetry ---------------------------------------------------------

    def _cht_snapshot(self) -> dict:
        """The ``snapshot["cht"]`` section: occupancy and hit-rates.

        ``sessions`` covers every open session with a CHT-backed
        predictor (occupancy of the table it reads, prediction hit-rate
        of its own traffic, whether that table is shared);
        ``shared_tables`` covers each scene-keyed bank with its reader
        set and the bank-attributed statistics from coalesced execution.
        """
        per_session: dict[str, dict] = {}
        for session_id, session in sorted(self.sessions.items()):
            predictor = session.predictor
            if not isinstance(predictor, CHTPredictor):
                continue
            made = session.stats.predictions_made
            per_session[session_id] = {
                "occupancy": predictor.table.occupancy(),
                "hit_rate": session.stats.predicted_colliding / made if made else 0.0,
                "shared": session.shared.entry_id if session.shared is not None else None,
            }
        shared_tables: dict[str, dict] = {}
        for entry in self._shared_tables.values():
            table = entry.table
            shared_tables[entry.entry_id] = {
                "occupancy": table.occupancy(),
                "hit_rate": entry.hit_rate(),
                "sessions": sorted(entry.sessions),
                "reads": table.reads,
                "writes": table.writes,
                "segment": table.spec.name,
                "scene_key": entry.scene_key,
                "quarantined": entry.quarantined,
                "rebuilds": entry.rebuilds,
                "rollbacks": table.rollbacks,
                "restored": entry.restored,
            }
        return {"sessions": per_session, "shared_tables": shared_tables}

    def _broad_phase_snapshot(self) -> dict:
        """The ``snapshot["broad_phase"]`` section: per-scene index state.

        One record per distinct scene object across open sessions
        (same-scene sessions share one packed obstacle set, so they share
        one record): index mode, obstacle count, candidate-pair
        examination/reduction totals, and refit/rebuild counts. Scenes
        with no obstacles (nothing packed) are omitted.
        """
        scenes: list[dict] = []
        seen: set[int] = set()
        for _, session in sorted(self.sessions.items()):
            scene = session.detector.scene
            if id(scene) in seen:
                continue
            seen.add(id(scene))
            packed = scene.obstacle_set()
            if packed is None:
                continue
            record = packed.broad_phase_snapshot()
            record["scene"] = scene.name
            scenes.append(record)
        return {"scenes": scenes}
