"""Online serving layer: async batched collision queries with backpressure.

The first layer of the ROADMAP's serving architecture. The offline
pipeline answers "how many CDQs does a configuration execute"; this
package answers "what latency does a *stream* of collision queries see",
which is the quantity that actually gates a planner (Sec. III-E). It
provides:

* :class:`CollisionService` — asyncio service with per-session CHT state;
* micro-batching with shard-per-worker CHT placement (no Fig. 11
  shared-table contention by construction);
* bounded-queue admission control (block / reject-with-retry-after) and a
  deadline path that falls back to the CHT's *predicted* verdict;
* supervised worker loops with a circuit-breaker degradation ladder
  (batch → scalar → CHT-predicted) and shutdown draining — every request
  terminates as ok / predicted / rejected / shutdown, never hangs;
* streaming latency + resilience telemetry and an open-loop replay load
  generator.
"""

from .admission import (
    ADMISSION_POLICIES,
    QUERY_TYPES,
    STATUS_OK,
    STATUS_PREDICTED,
    STATUS_REJECTED,
    STATUS_SHUTDOWN,
    AdmissionController,
    QueryRequest,
    QueryResult,
)
from .batching import BatchingConfig, MicroBatcher, worker_for_session
from .loadgen import LoadGenerator, LoadTestReport, ScheduledRequest
from .service import (
    WORKER_ERROR_POLICIES,
    CollisionService,
    ServiceConfig,
    Session,
    scene_bank_key,
)
from .telemetry import ServiceTelemetry

__all__ = [
    "ADMISSION_POLICIES",
    "QUERY_TYPES",
    "STATUS_OK",
    "STATUS_PREDICTED",
    "STATUS_REJECTED",
    "STATUS_SHUTDOWN",
    "WORKER_ERROR_POLICIES",
    "AdmissionController",
    "QueryRequest",
    "QueryResult",
    "BatchingConfig",
    "MicroBatcher",
    "worker_for_session",
    "LoadGenerator",
    "LoadTestReport",
    "ScheduledRequest",
    "CollisionService",
    "ServiceConfig",
    "Session",
    "ServiceTelemetry",
    "scene_bank_key",
]
