"""Open-loop replay load generator for the collision service.

Replays planner workload traces (:mod:`repro.workloads.io`) against a
:class:`~repro.serving.service.CollisionService` the way serving systems
are actually load-tested: arrivals follow a seeded Poisson process at a
target QPS and are issued *open-loop* — the generator does not wait for
one verdict before sending the next request, so queueing delay shows up
as latency instead of silently throttling the offered load.

The request schedule (arrival offsets, session assignment, motions) is
computed up front from the seed alone, so two generators with the same
seed and trace offer byte-identical load — the property the determinism
tests pin down.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from dataclasses import dataclass, field

import numpy as np

from ..collision.pipeline import Motion
from ..workloads.benchmarks import PlannerWorkload
from .admission import (
    STATUS_OK,
    STATUS_PREDICTED,
    STATUS_REJECTED,
    STATUS_SHUTDOWN,
    QueryResult,
)
from .service import CollisionService

__all__ = ["ScheduledRequest", "LoadTestReport", "LoadGenerator"]


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned arrival: when, which session, which motion."""

    at_s: float
    workload_index: int
    motion: Motion
    deadline_ms: float | None = None
    #: Which of the workload's ``sessions_per_scene`` concurrent sessions
    #: this arrival targets (0 when each workload has a single session).
    session_slot: int = 0
    #: Execution semantics (see :data:`repro.serving.admission.QUERY_TYPES`).
    query_type: str = "motion"


@dataclass
class LoadTestReport:
    """Outcome of one load-generator run."""

    offered: int
    completed: int
    predicted: int
    rejected: int
    colliding: int
    wall_s: float
    target_qps: float
    shutdown: int = 0
    snapshot: dict = field(default_factory=dict)

    @property
    def achieved_qps(self) -> float:
        """Requests answered (exactly or speculatively) per wall second."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def answered(self) -> int:
        """Requests that reached *any* terminal status (nothing hung)."""
        return self.completed + self.rejected + self.shutdown

    def render(self) -> str:
        """Human-readable multi-line summary."""
        latency = self.snapshot.get("latency_ms", {}).get("total", {})
        lines = [
            f"offered:   {self.offered} requests @ {self.target_qps:g} qps target",
            f"answered:  {self.completed} ({self.predicted} predicted-only)",
            f"rejected:  {self.rejected} (backpressure)",
            f"colliding: {self.colliding}",
            f"wall:      {self.wall_s:.3f} s ({self.achieved_qps:.1f} qps achieved)",
        ]
        if self.shutdown:
            lines.insert(3, f"shutdown:  {self.shutdown} (drained at stop)")
        if latency:
            lines.append(
                "latency:   p50 {p50:.3f} ms | p95 {p95:.3f} ms | p99 {p99:.3f} ms".format(
                    **{k: latency[k] for k in ("p50", "p95", "p99")}
                )
            )
        return "\n".join(lines)


class LoadGenerator:
    """Drives a service from planner workloads at a target QPS."""

    def __init__(
        self,
        service: CollisionService,
        workloads: list[PlannerWorkload],
        qps: float = 200.0,
        seed: int = 0,
        max_requests: int | None = None,
        deadline_ms: float | None = None,
        time_scale: float = 1.0,
        sessions_per_scene: int = 1,
        query_type: str = "motion",
    ) -> None:
        if qps <= 0.0:
            raise ValueError("qps must be positive")
        if not workloads:
            raise ValueError("need at least one workload to replay")
        if any(not w.motions for w in workloads):
            raise ValueError("every replayed workload needs recorded motions")
        if sessions_per_scene < 1:
            raise ValueError("sessions_per_scene must be positive")
        self.service = service
        self.workloads = list(workloads)
        self.qps = float(qps)
        self.seed = int(seed)
        self.max_requests = max_requests
        self.deadline_ms = deadline_ms
        #: <1 compresses the schedule (faster tests), >1 stretches it.
        self.time_scale = float(time_scale)
        #: Concurrent sessions opened against each workload's scene — the
        #: many-clients-one-scene shape that shared CHT banks
        #: (``ServiceConfig(shared_cht=True)``) amortize across.
        self.sessions_per_scene = int(sessions_per_scene)
        #: Query semantics every scheduled arrival carries.
        self.query_type = str(query_type)

    def schedule(self) -> list[ScheduledRequest]:
        """The deterministic arrival plan implied by (trace, qps, seed).

        Motions are drawn round-robin across workloads, cycling each
        workload's recorded motions in order; inter-arrival gaps are
        exponential with mean ``1/qps``. With ``sessions_per_scene > 1``,
        consecutive visits to a workload rotate through its session slots
        — deterministically, from the request index alone — so the load
        models N independent clients planning against the same scene.
        """
        rng = np.random.default_rng(self.seed)
        total = self.max_requests
        if total is None:
            total = sum(len(w.motions) for w in self.workloads)
        cursors = [itertools.cycle(w.motions) for w in self.workloads]
        plan = []
        now = 0.0
        for index in range(total):
            now += rng.exponential(1.0 / self.qps)
            workload_index = index % len(self.workloads)
            recorded = next(cursors[workload_index])
            plan.append(
                ScheduledRequest(
                    at_s=now,
                    workload_index=workload_index,
                    motion=recorded.as_motion(),
                    deadline_ms=self.deadline_ms,
                    session_slot=(index // len(self.workloads)) % self.sessions_per_scene,
                    query_type=self.query_type,
                )
            )
        return plan

    async def run(self) -> LoadTestReport:
        """Replay the schedule open-loop; returns the aggregated report.

        Opens ``sessions_per_scene`` service sessions per workload
        (sessions must not outlive the run: they are closed before
        returning). Under a shared-CHT service, a workload's sessions all
        read the same scene-keyed bank.
        """
        plan = self.schedule()
        session_ids = [
            [
                self.service.open_session(w.scene, w.robot)
                for _ in range(self.sessions_per_scene)
            ]
            for w in self.workloads
        ]
        loop_clock = time.perf_counter
        started = loop_clock()
        tasks = []
        try:
            for request in plan:
                delay = started + request.at_s * self.time_scale - loop_clock()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(
                    asyncio.ensure_future(
                        self.service.submit(
                            session_ids[request.workload_index][request.session_slot],
                            request.motion,
                            deadline_ms=request.deadline_ms,
                            query_type=request.query_type,
                        )
                    )
                )
            results: list[QueryResult] = await asyncio.gather(*tasks)
        finally:
            for workload_sessions in session_ids:
                for session_id in workload_sessions:
                    self.service.close_session(session_id)
        wall_s = loop_clock() - started
        by_status: dict[str, int] = {}
        colliding = 0
        for result in results:
            by_status[result.status] = by_status.get(result.status, 0) + 1
            colliding += bool(result.colliding)
        return LoadTestReport(
            offered=len(plan),
            completed=by_status.get(STATUS_OK, 0) + by_status.get(STATUS_PREDICTED, 0),
            predicted=by_status.get(STATUS_PREDICTED, 0),
            rejected=by_status.get(STATUS_REJECTED, 0),
            shutdown=by_status.get(STATUS_SHUTDOWN, 0),
            colliding=colliding,
            wall_s=wall_s,
            target_qps=self.qps,
            snapshot=self.service.telemetry.snapshot(),
        )
