"""Result-table formatting shared by the benchmark harness.

Every figure/table bench prints its series through these helpers so the
regenerated output has one consistent, diffable format (and EXPERIMENTS.md
embeds the same text).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_ratio", "format_percent"]


def format_percent(value: float, signed: bool = True) -> str:
    """Format a fraction as a percentage string."""
    sign = "+" if signed else ""
    return f"{value:{sign}.1%}"


def format_ratio(value: float) -> str:
    """Format a speedup/efficiency ratio like the paper (1.23x)."""
    return f"{value:.2f}x"


@dataclass
class Table:
    """A fixed-column text table with a title and aligned rendering."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append a row; cells are stringified."""
        cells = [str(c) for c in cells]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, ""]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table, framed by blank lines."""
        print()
        print(self.render())
        print()
