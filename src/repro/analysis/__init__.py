"""Result reporting, experiment drivers, and visualization."""

from .report import Table, format_percent, format_ratio
from .viz import render_cht_heatmap, render_scene_2d

__all__ = [
    "Table",
    "format_percent",
    "format_ratio",
    "render_cht_heatmap",
    "render_scene_2d",
]
