"""Ablation studies over the design choices DESIGN.md calls out.

These go beyond the paper's figures: each function isolates one design
parameter of the reproduction and quantifies its effect, using the same
cached :class:`~repro.analysis.experiments.ExperimentContext` workloads.

* :func:`ablation_hash_bits` — COORD bin granularity (bits per axis).
* :func:`ablation_cht_size` — history-table capacity.
* :func:`ablation_csp_step` — the CSP scheduler's stride.
* :func:`ablation_link_granularity` — OBBs per robot link.
* :func:`ablation_adaptive_s` — fixed strategies vs. the adaptive-S
  extension (the paper's future work, Sec. VI-A1).
* :func:`ablation_dynamic_history` — CHT reset vs. carry-over across
  time frames of a dynamic environment (Fig. 8a's temporal locality).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..collision.detector import CollisionDetector
from ..collision.pipeline import Motion, check_motion_batch
from ..collision.scheduling import CoarseStepScheduler
from ..core.adaptive import AdaptiveCHTPredictor
from ..core.hashing import CoordHash
from ..core.predictor import CHTPredictor
from ..env.dynamic import DynamicScene, history_carryover_validity
from ..hardware.accelerator import AcceleratorSimulator
from ..hardware.config import baseline_config, copu_config
from ..kinematics.robots import jaco2
from .experiments import ExperimentContext, _hardware_cdqs, _pose_level_eval, _stable_hash
from .report import Table, format_percent

__all__ = [
    "ablation_hash_bits",
    "ablation_cht_size",
    "ablation_csp_step",
    "ablation_link_granularity",
    "ablation_adaptive_s",
    "ablation_dynamic_history",
]

_SEED = 424242


def ablation_hash_bits(ctx: ExperimentContext) -> Table:
    """COORD bin-size sweep: precision/recall per bits-per-axis."""
    table = Table(
        "Ablation: COORD hash granularity (medium clutter, S = 1)",
        ["bits/axis", "bin size (m)", "precision", "recall"],
    )
    poses = max(200, int(400 * ctx.scale))
    streams = ctx.labelled_pose_streams("medium", poses)
    for bits in (2, 3, 4, 5, 6):
        scored = _pose_level_eval(
            streams, lambda scene, b=bits: CoordHash(b), "coord", s=1.0, table_size=1 << 22
        )["pose"]
        table.add_row(
            bits,
            f"{CoordHash(bits).cell_size():.3f}",
            f"{scored.precision:.3f}",
            f"{scored.recall:.3f}",
        )
    return table


def ablation_cht_size(ctx: ExperimentContext) -> Table:
    """History-table capacity sweep on the hardware simulator."""
    per_query = ctx.suite_traces("mpnet-baxter")
    base = _hardware_cdqs(per_query, baseline_config(6))
    table = Table(
        "Ablation: CHT capacity (MPNet-Baxter, hardware simulation)",
        ["entries", "cdqs", "reduction-vs-baseline"],
    )
    for entries in (256, 1024, 4096, 16384):
        config = dataclasses.replace(copu_config(6), cht_size=entries)
        pred = _hardware_cdqs(per_query, config)
        table.add_row(entries, pred, format_percent(1.0 - pred / max(base, 1)))
    return table


def ablation_csp_step(ctx: ExperimentContext) -> Table:
    """CSP stride sweep: the baseline scheduler's one parameter."""
    per_query = ctx.suite_traces("mpnet-baxter")
    table = Table(
        "Ablation: CSP step size (MPNet-Baxter, no prediction)",
        ["step", "cdqs"],
    )
    for step in (1, 2, 3, 4, 6, 8):
        total = 0
        for traces in per_query:
            sim = AcceleratorSimulator(
                baseline_config(6),
                scheduler=CoarseStepScheduler(step),
                rng=np.random.default_rng(9),
            )
            total += sim.run(traces).cdqs_executed
        table.add_row(step, total)
    return table


def ablation_link_granularity(ctx: ExperimentContext) -> Table:
    """OBBs-per-link sweep: finer volumes mean more, cheaper CDQs."""
    del ctx
    scene_rng = np.random.default_rng(_SEED)
    from ..env.generators import calibrated_clutter_scene

    table = Table(
        "Ablation: bounding-volume granularity (Jaco2, software COORD)",
        ["boxes/link", "cdq-population", "csp-cdqs", "coord-cdqs", "reduction"],
    )
    base_robot = jaco2()
    scene = calibrated_clutter_scene(scene_rng, base_robot, "high", probe_poses=100)
    motion_rng = np.random.default_rng(_SEED + 1)
    endpoints = [
        (base_robot.random_configuration(motion_rng), base_robot.random_configuration(motion_rng))
        for _ in range(40)
    ]
    for boxes in (1, 2, 3):
        robot = jaco2(boxes_per_link=boxes)
        detector = CollisionDetector(scene, robot)
        motions = [Motion(a, b, 12) for a, b in endpoints]
        csp = check_motion_batch(detector, motions, CoarseStepScheduler(4), None)
        predictor = CHTPredictor.create(CoordHash(4), 4096, s=0.0, u=0.0)
        coord = check_motion_batch(detector, motions, CoarseStepScheduler(4), predictor)
        table.add_row(
            boxes,
            csp.stats.total_cdqs,
            csp.cdqs_executed,
            coord.cdqs_executed,
            format_percent(coord.reduction_vs(csp)),
        )
    return table


def ablation_adaptive_s(ctx: ExperimentContext) -> Table:
    """Fixed S values vs the adaptive-S predictor over mixed densities.

    Each density family is evaluated separately (the adaptive predictor
    re-tunes per environment measurement); the score is the software CDQ
    reduction vs the CSP baseline, summed over the mix.
    """
    robot = jaco2()
    table = Table(
        "Ablation: adaptive strategy selection (paper future work)",
        ["predictor", "low", "medium", "high", "mixed-total"],
    )
    motions_per_scene = max(25, int(50 * ctx.scale))

    def evaluate(make_predictor) -> dict:
        reductions = {}
        totals = {"csp": 0, "pred": 0}
        for density in ("low", "medium", "high"):
            scene = ctx.density_scenes(density, count=2)[0]
            detector = CollisionDetector(scene, robot)
            rng = np.random.default_rng(_SEED + _stable_hash(density) % 17)
            motions = [
                Motion(robot.random_configuration(rng), robot.random_configuration(rng), 12)
                for _ in range(motions_per_scene)
            ]
            csp = check_motion_batch(detector, motions, CoarseStepScheduler(4), None)
            predictor = make_predictor(scene)
            pred = check_motion_batch(detector, motions, CoarseStepScheduler(4), predictor)
            reductions[density] = pred.reduction_vs(csp)
            totals["csp"] += csp.cdqs_executed
            totals["pred"] += pred.cdqs_executed
        reductions["total"] = 1.0 - totals["pred"] / max(totals["csp"], 1)
        return reductions

    for s in (0.0, 0.5, 2.0):
        result = evaluate(
            lambda scene, s=s: CHTPredictor.create(CoordHash(4), 4096, s=s, u=1.0)
        )
        table.add_row(
            f"fixed S={s}",
            format_percent(result["low"]),
            format_percent(result["medium"]),
            format_percent(result["high"]),
            format_percent(result["total"]),
        )

    def adaptive(scene):
        predictor = AdaptiveCHTPredictor(CoordHash(4), table_size=4096)
        predictor.observe_environment(scene)
        return predictor

    result = evaluate(adaptive)
    table.add_row(
        "adaptive S",
        format_percent(result["low"]),
        format_percent(result["medium"]),
        format_percent(result["high"]),
        format_percent(result["total"]),
    )
    return table


def ablation_dynamic_history(ctx: ExperimentContext) -> Table:
    """CHT reset vs carry-over across frames of a dynamic environment.

    For slow obstacles (drift well below the hash-bin size) history from
    the previous frame remains mostly valid and carrying it over reduces
    CDQs; for fast obstacles stale positives hurt and the paper's
    reset-per-measurement policy is the right default.
    """
    robot = jaco2()
    base_scene = ctx.density_scenes("high", count=2)[1]
    table = Table(
        "Ablation: CHT policy across dynamic-environment frames (Jaco2)",
        ["obstacle speed", "history validity", "reset-cdqs", "carry-cdqs", "carry benefit"],
    )
    motions_per_frame = max(20, int(40 * ctx.scale))
    frames = 4
    for label, speed in (("slow (0.01/frame)", 0.01), ("fast (0.30/frame)", 0.30)):
        dynamic = DynamicScene.from_scene(base_scene, np.random.default_rng(3), max_speed=speed)
        validity = history_carryover_validity(
            dynamic.frame(0), dynamic.frame(1), robot, np.random.default_rng(4), 100
        )
        totals = {"reset": 0, "carry": 0}
        for policy in ("reset", "carry"):
            predictor = CHTPredictor.create(CoordHash(4), 4096, s=0.0, u=0.0)
            rng = np.random.default_rng(_SEED + 5)
            for frame_index in range(frames):
                scene = dynamic.frame(frame_index)
                detector = CollisionDetector(scene, robot)
                if policy == "reset":
                    predictor.reset()
                motions = [
                    Motion(
                        robot.random_configuration(rng),
                        robot.random_configuration(rng),
                        12,
                    )
                    for _ in range(motions_per_frame)
                ]
                result = check_motion_batch(
                    detector, motions, CoarseStepScheduler(4), predictor
                )
                totals[policy] += result.cdqs_executed
        benefit = 1.0 - totals["carry"] / max(totals["reset"], 1)
        table.add_row(
            label,
            f"{validity:.3f}",
            totals["reset"],
            totals["carry"],
            format_percent(benefit),
        )
    return table
