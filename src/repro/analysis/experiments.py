"""Experiment drivers regenerating every figure/table of the paper.

Each ``fig*``/``sec*`` function computes one experiment's data and returns
a rendered :class:`~repro.analysis.report.Table` (or several). The
functions are deliberately importable from both the ``benchmarks/`` pytest
harness and :mod:`repro.analysis.run_all` (which assembles EXPERIMENTS.md),
so the repository has exactly one implementation of every figure.

Workload sizes are scaled down from the paper's (hundreds of planning
queries) to keep a full regeneration under ~10 minutes on a laptop; the
``scale`` parameter of :func:`build_suites` raises them when more fidelity
is wanted. Seeds are fixed throughout: rerunning a function reproduces the
same rows bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import zlib

import numpy as np

from ..collision.detector import CollisionDetector
from ..collision.parallel import run_parallel_batch
from ..collision.pipeline import Motion, check_motion_batch
from ..collision.scheduling import CoarseStepScheduler, NaiveScheduler
from ..core.encoders import train_coord_autoencoder, train_pose_autoencoder
from ..core.hashing import CoordHash, PoseFoldHash, PoseHash, PosePartHash
from ..core.metrics import ConfusionCounts
from ..core.predictor import CHTPredictor, OraclePredictor
from ..core.statistical_model import estimate_reduction
from ..env.generators import calibrated_clutter_scene
from ..env.scene import Scene
from ..env.voxels import voxelize_scene
from ..env.octree import build_motion_octree
from ..geometry.aabb import AABB
from ..hardware.accelerator import AcceleratorSimulator
from ..hardware.config import baseline_config, copu_config
from ..hardware.dadu import DaduSimulator
from ..hardware.energy import EnergyModel, sram_area_mm2, sram_access_energy_pj
from ..hardware.sphere_accel import trace_motions_spheres
from ..kinematics.robots import jaco2
from ..planners.prm import build_random_roadmap
from ..workloads.benchmarks import BENCHMARK_NAMES, PlannerWorkload, make_benchmark
from ..workloads.difficulty import GROUP_LABELS, group_by_difficulty
from ..workloads.traces import MotionTrace, trace_motion
from .report import Table, format_percent, format_ratio

__all__ = [
    "ExperimentContext",
    "build_suites",
    "fig01_overview",
    "fig06_limit_study",
    "fig07_difficulty_oracle",
    "fig09_hash_functions",
    "fig11_gpu_parallelism",
    "fig13_strategies",
    "fig14_update_frequency",
    "fig15_copu_reduction",
    "fig16_performance",
    "fig17_queue_size",
    "fig18_sensitivity",
    "sec3e_cpu_prediction",
    "sec6b1_overheads",
    "sec7_sphere_cdu",
    "sec7_dadu_p",
]

_SEED = 20240624


def _stable_hash(text: str) -> int:
    """Process-independent string hash (built-in hash() is randomized)."""
    return zlib.crc32(text.encode())


@dataclass
class ExperimentContext:
    """Caches the expensive shared inputs across experiment functions."""

    scale: float = 1.0
    seed: int = _SEED
    suites: dict = field(default_factory=dict)
    traces: dict = field(default_factory=dict)
    scenes: dict = field(default_factory=dict)

    def suite(self, name: str, queries: int | None = None) -> list[PlannerWorkload]:
        """Planner workloads of one benchmark combination (cached).

        ``queries`` overrides the scale-derived planning-query count (the
        difficulty-grouping experiments need a larger population); cached
        separately per count.
        """
        count = queries if queries is not None else max(4, int(8 * self.scale))
        key = (name, count)
        if key not in self.suites:
            rng = np.random.default_rng(self.seed + _stable_hash(name) % 1000)
            self.suites[key] = make_benchmark(
                name, rng, num_queries=count, hard_fraction=0.5
            )
        return self.suites[key]

    def suite_traces(self, name: str, queries: int | None = None) -> list[list[MotionTrace]]:
        """Per-query exhaustive CDQ traces for one benchmark (cached)."""
        key = (name, queries)
        if key not in self.traces:
            per_query = []
            for workload in self.suite(name, queries):
                detector = CollisionDetector(workload.scene, workload.robot)
                per_query.append(
                    [
                        trace_motion(detector, m.as_motion(), i, m.stage)
                        for i, m in enumerate(workload.motions)
                    ]
                )
            self.traces[key] = per_query
        return self.traces[key]

    def density_scenes(self, density: str, count: int = 4) -> list[Scene]:
        """Calibrated Jaco2 clutter scenes of one density (cached)."""
        key = (density, count)
        if key not in self.scenes:
            robot = jaco2()
            self.scenes[key] = [
                calibrated_clutter_scene(
                    np.random.default_rng(self.seed + 31 * i + _stable_hash(density) % 97),
                    robot,
                    density,
                    probe_poses=100,
                    max_rounds=6,
                )
                for i in range(count)
            ]
        return self.scenes[key]

    def labelled_pose_streams(self, density: str, poses_per_scene: int) -> list[list]:
        """Ground-truth-labelled random-pose streams per scene (cached).

        Each stream entry is ``(q, link_centers, link_outcomes)`` — the
        expensive part (forward kinematics + CDQ ground truth) computed
        once and replayed by every hash/S/U configuration.
        """
        key = ("stream", density, poses_per_scene)
        if key not in self.scenes:
            robot = jaco2()
            streams = []
            for scene_index, scene in enumerate(self.density_scenes(density)):
                rng = np.random.default_rng(self.seed + scene_index)
                stream = []
                for _ in range(poses_per_scene):
                    q = robot.random_configuration(rng)
                    boxes = robot.pose_obbs(q)
                    centers = [b.center for b in boxes]
                    outcomes = [scene.volume_collides(b) for b in boxes]
                    stream.append((q, centers, outcomes))
                streams.append(stream)
            self.scenes[key] = streams
        return self.scenes[key]


def build_suites(scale: float = 1.0, seed: int = _SEED) -> ExperimentContext:
    """Create a fresh experiment context (workloads generated lazily).

    ``seed`` is the single root every stochastic input derives from —
    benches thread their ``--seed`` option through here so one flag
    reproduces the whole figure set.
    """
    return ExperimentContext(scale=scale, seed=seed)


# ---------------------------------------------------------------------------
# Shared evaluation helpers
# ---------------------------------------------------------------------------


def _software_configs(detector: CollisionDetector):
    """The four software scheduling configurations of Fig. 1."""
    odet = detector.make_oracle_detector()
    return {
        "naive": (detector, NaiveScheduler(), None),
        "csp": (detector, CoarseStepScheduler(4), None),
        "coord": (
            detector,
            CoarseStepScheduler(4),
            CHTPredictor.create(CoordHash(4), table_size=4096, s=0.0, u=0.0),
        ),
        "oracle": (odet, CoarseStepScheduler(4), OraclePredictor(odet.ground_truth_fn())),
    }


def _software_cdqs(workload: PlannerWorkload) -> dict[str, int]:
    """Executed CDQs of one workload under each software configuration."""
    detector = CollisionDetector(workload.scene, workload.robot)
    motions = [m.as_motion() for m in workload.motions]
    counts = {}
    for label, (det, scheduler, predictor) in _software_configs(detector).items():
        if predictor is not None:
            predictor.reset()
        counts[label] = check_motion_batch(det, motions, scheduler, predictor).cdqs_executed
    return counts


def _pose_level_eval(
    streams: list[list],
    hash_builder,
    key_kind: str,
    s: float,
    u: float = 1.0,
    table_size: int = 4096,
) -> dict[str, ConfusionCounts]:
    """Fig. 9/13/14 methodology: pose-level precision/recall on random poses.

    ``streams`` come from :meth:`ExperimentContext.labelled_pose_streams`
    (ground truth precomputed once). ``key_kind`` selects what the hash
    consumes: ``"coord"`` hashes per-link centers, ``"pose"`` hashes the
    C-space vector (one shared key per pose).

    Returns a dict with two confusion matrices: ``"pose"`` scores at
    pose granularity (the paper's Fig. 9 metric — a pose is predicted
    colliding when any link is) and ``"cdq"`` at individual-query
    granularity (the input to the Fig. 13 statistical model).
    """
    pose_counts = ConfusionCounts()
    cdq_counts = ConfusionCounts()
    for stream in streams:
        hash_function = hash_builder(None)
        predictor = CHTPredictor.create(
            hash_function,
            table_size=min(table_size, max(2, 1 << min(hash_function.code_bits, 22))),
            s=s,
            u=u,
            rng=np.random.default_rng(1),
        )
        for q, centers, outcomes in stream:
            if key_kind == "pose":
                # C-space hashes (Sec. III-B) record the *pose's* outcome:
                # one prediction and one history update per pose.
                prediction = predictor.predict(q)
                actual = any(outcomes)
                pose_counts.record(prediction, actual)
                cdq_counts.record(prediction, actual)
                predictor.observe(q, actual)
                continue
            predictions = [predictor.predict(k) for k in centers]
            pose_counts.record(any(predictions), any(outcomes))
            for key, prediction, outcome in zip(centers, predictions, outcomes):
                cdq_counts.record(prediction, outcome)
                predictor.observe(key, outcome)
    return {"pose": pose_counts, "cdq": cdq_counts}


def _hardware_cdqs(
    per_query_traces: list[list[MotionTrace]], config, seed: int = 9
) -> int:
    """Total executed CDQs over per-query trace batches (fresh CHT each)."""
    total = 0
    for traces in per_query_traces:
        sim = AcceleratorSimulator(config, rng=np.random.default_rng(seed))
        total += sim.run(traces).cdqs_executed
    return total


# ---------------------------------------------------------------------------
# Figure 1(d): scheduling-policy overview across B1-B6
# ---------------------------------------------------------------------------


def fig01_overview(ctx: ExperimentContext) -> Table:
    """Reduction in CDQ computation: naive vs CSP vs COORD vs Oracle.

    B1-B6 are the six benchmark suites (one per planner-robot combination);
    numbers are normalized to the naive sequential scheduler, as in the
    paper's overview figure.
    """
    table = Table(
        "Figure 1(d): relative CDQ computation by scheduling policy (naive = 1.0)",
        ["bench", "suite", "naive", "csp", "coord", "oracle"],
    )
    for index, name in enumerate(BENCHMARK_NAMES, start=1):
        totals = {"naive": 0, "csp": 0, "coord": 0, "oracle": 0}
        for workload in ctx.suite(name):
            for label, value in _software_cdqs(workload).items():
                totals[label] += value
        naive = max(totals["naive"], 1)
        table.add_row(
            f"B{index}",
            name,
            "1.000",
            f"{totals['csp'] / naive:.3f}",
            f"{totals['coord'] / naive:.3f}",
            f"{totals['oracle'] / naive:.3f}",
        )
    return table


# ---------------------------------------------------------------------------
# Figure 6: limit study (naive / CSP / Oracle per algorithm stage)
# ---------------------------------------------------------------------------


def fig06_limit_study(ctx: ExperimentContext) -> Table:
    """Oracle-prediction limit study, split by algorithm stage S1/S2."""
    table = Table(
        "Figure 6: limit study - executed CDQs by stage (normalized to naive)",
        ["suite", "stage", "motions", "colliding", "naive", "csp", "oracle", "oracle-vs-csp"],
    )
    for name in ("mpnet-baxter", "gnnmp-kuka", "bit*-kuka"):
        stage_totals = {
            stage: {"naive": 0, "csp": 0, "oracle": 0, "motions": 0, "colliding": 0}
            for stage in ("S1", "S2")
        }
        for workload in ctx.suite(name):
            detector = CollisionDetector(workload.scene, workload.robot)
            configs = _software_configs(detector)
            for stage in ("S1", "S2"):
                motions = [m.as_motion() for m in workload.stage_motions(stage)]
                if not motions:
                    continue
                bucket = stage_totals[stage]
                bucket["motions"] += len(motions)
                for label in ("naive", "csp", "oracle"):
                    det, scheduler, predictor = configs[label]
                    if predictor is not None:
                        predictor.reset()
                    result = check_motion_batch(det, motions, scheduler, predictor)
                    bucket[label] += result.cdqs_executed
                    if label == "naive":
                        bucket["colliding"] += sum(result.outcomes)
        for stage in ("S1", "S2"):
            bucket = stage_totals[stage]
            naive = max(bucket["naive"], 1)
            csp = max(bucket["csp"], 1)
            table.add_row(
                name,
                stage,
                bucket["motions"],
                f"{bucket['colliding'] / max(bucket['motions'], 1):.0%}",
                "1.000",
                f"{bucket['csp'] / naive:.3f}",
                f"{bucket['oracle'] / naive:.3f}",
                format_percent(1.0 - bucket["oracle"] / csp),
            )
    return table


# ---------------------------------------------------------------------------
# Figure 7: oracle gains by difficulty group (GNN-KUKA)
# ---------------------------------------------------------------------------


def fig07_difficulty_oracle(ctx: ExperimentContext) -> Table:
    """Oracle CDQ reduction vs CSP across difficulty groups G1-G5.

    Uses a larger query population than the other experiments so the five
    equal-size groups each hold several planning queries.
    """
    workloads = ctx.suite("gnnmp-kuka", queries=max(10, int(20 * ctx.scale)))
    per_query = [_software_cdqs(w) for w in workloads]
    groups = group_by_difficulty(per_query, [c["csp"] for c in per_query])
    table = Table(
        "Figure 7: oracle CDQ reduction vs CSP by difficulty group (GNN-KUKA)",
        ["group", "queries", "csp-cdqs", "oracle-cdqs", "reduction"],
    )
    for label in GROUP_LABELS:
        rows = groups[label]
        if not rows:
            continue
        csp = sum(r["csp"] for r in rows)
        oracle = sum(r["oracle"] for r in rows)
        table.add_row(
            label,
            len(rows),
            csp,
            oracle,
            format_percent(1.0 - oracle / max(csp, 1)),
        )
    return table


# ---------------------------------------------------------------------------
# Figure 9: hash-function precision/recall
# ---------------------------------------------------------------------------


def fig09_hash_functions(ctx: ExperimentContext) -> Table:
    """Precision/recall of the hash-function family, low vs high clutter."""
    robot = jaco2()
    limits = robot.joint_limits
    train_rng = np.random.default_rng(ctx.seed)
    enpose = train_pose_autoencoder(
        limits, train_rng, latent_dim=2, bits_per_dim=6, num_samples=4096, epochs=15
    )
    # ENCOORD trains on observed link centers of random poses.
    centers = np.concatenate(
        [
            robot.link_centers(robot.random_configuration(train_rng))
            for _ in range(600)
        ]
    )
    encoord = train_coord_autoencoder(centers, train_rng, latent_dim=2, bits_per_dim=6, epochs=15)

    candidates = [
        ("POSE (3b/dof, 21b)", lambda scene: PoseHash(limits, 3), "pose"),
        ("POSE+fold (12b)", lambda scene: PoseFoldHash(limits, 3, 12), "pose"),
        ("POSE-part (2dof, 12b)", lambda scene: PosePartHash(limits, 6, 2), "pose"),
        ("ENPOSE (2x6b)", lambda scene: enpose, "pose"),
        ("ENCOORD (2x6b)", lambda scene: encoord, "coord"),
        ("COORD (4b/axis, 12b)", lambda scene: CoordHash(4), "coord"),
        ("COORD (5b/axis, 15b)", lambda scene: CoordHash(5), "coord"),
    ]
    table = Table(
        "Figure 9: collision prediction precision/recall by hash function",
        ["hash", "clutter", "precision", "recall", "base-rate"],
    )
    # The sparse C-space tables need a longer pose stream than the S/U
    # sweeps before their (low) recall becomes measurable — the paper uses
    # 1000 poses per scene.
    poses = max(800, int(1000 * ctx.scale))
    for density in ("low", "high"):
        streams = ctx.labelled_pose_streams(density, poses)
        for label, builder, kind in candidates:
            counts = _pose_level_eval(streams, builder, kind, s=1.0, table_size=1 << 22)["pose"]
            table.add_row(
                label,
                density,
                f"{counts.precision:.3f}",
                f"{counts.recall:.3f}",
                f"{counts.base_rate:.3f}",
            )
    return table


# ---------------------------------------------------------------------------
# Figure 11: GPU-parallel collision detection
# ---------------------------------------------------------------------------


def fig11_gpu_parallelism(ctx: ExperimentContext) -> Table:
    """Executed CDQs and runtime vs thread count, with/without prediction."""
    workloads = ctx.suite("mpnet-baxter")
    table = Table(
        "Figure 11: GPU parallelism sweep (normalized to 64-thread baseline)",
        ["threads", "cdqs(base)", "cdqs(pred)", "time(base)", "time(pred)"],
    )

    def run_all(threads: int, with_prediction: bool):
        """Sum executed CDQs / runtime over every planning query."""
        cdqs = 0
        runtime = 0.0
        for workload in workloads:
            detector = CollisionDetector(workload.scene, workload.robot)
            motions = [m.as_motion() for m in workload.motions]
            predictor = (
                CHTPredictor.create(CoordHash(4), 4096, s=0.0, u=0.0)
                if with_prediction
                else None
            )
            result = run_parallel_batch(
                detector, motions, threads, CoarseStepScheduler(4), predictor
            )
            cdqs += result.cdqs_executed
            runtime += result.runtime
        return cdqs, runtime

    ref_cdqs, ref_runtime = run_all(64, with_prediction=False)
    for threads in (64, 512, 1024, 2048, 4096):
        base_cdqs, base_runtime = run_all(threads, with_prediction=False)
        pred_cdqs, pred_runtime = run_all(threads, with_prediction=True)
        table.add_row(
            threads,
            f"{base_cdqs / ref_cdqs:.2f}",
            f"{pred_cdqs / ref_cdqs:.2f}",
            f"{base_runtime / ref_runtime:.2f}",
            f"{pred_runtime / ref_runtime:.2f}",
        )
    return table


# ---------------------------------------------------------------------------
# Figures 13 & 14: prediction strategy (S) and update frequency (U)
# ---------------------------------------------------------------------------


def fig13_strategies(ctx: ExperimentContext) -> Table:
    """S-sweep: precision, recall, and modelled computation reduction."""
    table = Table(
        "Figure 13: prediction strategy sweep (COORD, 4b/axis)",
        ["clutter", "S", "precision", "recall", "computation-reduction"],
    )
    poses = max(200, int(400 * ctx.scale))
    for density in ("low", "medium", "high"):
        streams = ctx.labelled_pose_streams(density, poses)
        for s in (0.0, 0.25, 0.5, 1.0, 2.0):
            scored = _pose_level_eval(streams, lambda scene: CoordHash(4), "coord", s=s)
            pose, cdq = scored["pose"], scored["cdq"]
            estimate = estimate_reduction(
                collision_prob=max(cdq.base_rate, 1e-4),
                precision=cdq.precision,
                recall=cdq.recall,
            )
            table.add_row(
                density,
                s,
                f"{pose.precision:.3f}",
                f"{pose.recall:.3f}",
                format_percent(estimate.reduction),
            )
    return table


def fig14_update_frequency(ctx: ExperimentContext) -> Table:
    """U-sweep: effect of reduced CHT update frequency for free CDQs."""
    table = Table(
        "Figure 14: CHT update-frequency sweep (medium clutter, COORD 4b)",
        ["S", "U", "precision", "recall", "computation-reduction"],
    )
    poses = max(200, int(400 * ctx.scale))
    streams = ctx.labelled_pose_streams("medium", poses)
    for s in (0.5, 1.0):
        for u in (1.0, 0.5, 0.25, 0.125):
            scored = _pose_level_eval(streams, lambda scene: CoordHash(4), "coord", s=s, u=u)
            pose, cdq = scored["pose"], scored["cdq"]
            estimate = estimate_reduction(
                collision_prob=max(cdq.base_rate, 1e-4),
                precision=cdq.precision,
                recall=cdq.recall,
            )
            table.add_row(
                s,
                u,
                f"{pose.precision:.3f}",
                f"{pose.recall:.3f}",
                format_percent(estimate.reduction),
            )
    return table


# ---------------------------------------------------------------------------
# Figure 15: COPU CDQ reduction across benchmarks and difficulty groups
# ---------------------------------------------------------------------------


def fig15_copu_reduction(ctx: ExperimentContext) -> Table:
    """Hardware COPU vs CSP baseline, per suite and difficulty group."""
    table = Table(
        "Figure 15: COPU CDQ reduction vs CSP baseline (hardware simulation)",
        ["suite"] + list(GROUP_LABELS) + ["average"],
    )
    queries = max(8, int(15 * ctx.scale))
    for name in BENCHMARK_NAMES:
        per_query = ctx.suite_traces(name, queries=queries)
        rows = []
        for traces in per_query:
            base = _hardware_cdqs([traces], baseline_config(6))
            pred = _hardware_cdqs([traces], copu_config(6))
            rows.append({"base": base, "pred": pred})
        groups = group_by_difficulty(rows, [r["base"] for r in rows])
        cells = []
        for label in GROUP_LABELS:
            members = groups[label]
            if not members:
                cells.append("-")
                continue
            base = sum(r["base"] for r in members)
            pred = sum(r["pred"] for r in members)
            cells.append(format_percent(1.0 - pred / max(base, 1)))
        total_base = sum(r["base"] for r in rows)
        total_pred = sum(r["pred"] for r in rows)
        table.add_row(name, *cells, format_percent(1.0 - total_pred / max(total_base, 1)))
    return table


# ---------------------------------------------------------------------------
# Figure 16 / Sec. VI-B2: performance, perf/watt, perf/mm2
# ---------------------------------------------------------------------------


def fig16_performance(ctx: ExperimentContext) -> Table:
    """baseline.x vs COPU.x: latency, energy, perf/watt, perf/mm2."""
    per_query = ctx.suite_traces("mpnet-baxter")
    table = Table(
        "Figure 16: accelerator configurations (MPNet-Baxter workload)",
        ["config", "cdqs", "latency", "energy", "speedup", "perf/watt", "perf/mm2"],
    )
    references = {}
    for cdus in (1, 4, 6):
        for make in (baseline_config, copu_config):
            config = make(cdus)
            cycles = 0
            executed = 0
            energy = 0.0
            per_watt_n = 0.0
            area = None
            for traces in per_query:
                sim = AcceleratorSimulator(config, rng=np.random.default_rng(9))
                report = sim.run(traces)
                cycles += report.total_cycles
                executed += report.cdqs_executed
                energy += report.energy.total
                area = report.area
            motions = sum(len(t) for t in per_query)
            latency = cycles / motions
            references.setdefault(cdus, latency)
            base_latency = references[cdus]
            table.add_row(
                config.name,
                executed,
                f"{latency:.1f}",
                f"{energy / 1e3:.1f} nJ",
                format_ratio(base_latency / latency),
                f"{motions / energy * 1e3:.3f}",
                f"{motions / cycles / area.total:.4f}",
            )
    return table


# ---------------------------------------------------------------------------
# Figure 17: QNONCOLL queue-size sensitivity
# ---------------------------------------------------------------------------


def fig17_queue_size(ctx: ExperimentContext) -> Table:
    """CDQ reduction vs QNONCOLL size (QCOLL fixed at 8)."""
    per_query = ctx.suite_traces("mpnet-baxter")
    base = _hardware_cdqs(per_query, baseline_config(6))
    table = Table(
        "Figure 17: QNONCOLL queue-size sensitivity (MPNet-Baxter)",
        ["qnoncoll", "cdqs", "reduction-vs-baseline"],
    )
    for size in (4, 8, 16, 32, 56, 96):
        config = copu_config(6).with_queue_sizes(qcoll=8, qnoncoll=size)
        pred = _hardware_cdqs(per_query, config)
        table.add_row(size, pred, format_percent(1.0 - pred / max(base, 1)))
    return table


# ---------------------------------------------------------------------------
# Figure 18: hardware S and U sensitivity
# ---------------------------------------------------------------------------


def fig18_sensitivity(ctx: ExperimentContext) -> list[Table]:
    """CDQ-reduction sensitivity to the prediction strategy S and U."""
    per_query = ctx.suite_traces("mpnet-baxter")
    base = _hardware_cdqs(per_query, baseline_config(6))

    s_table = Table(
        "Figure 18(a): CDQ reduction vs prediction strategy S",
        ["S", "cdqs", "reduction"],
    )
    for s in (0.0, 0.25, 0.5, 1.0, 2.0):
        config = copu_config(6).with_strategy(s=s, u=1.0)
        pred = _hardware_cdqs(per_query, config)
        s_table.add_row(s, pred, format_percent(1.0 - pred / max(base, 1)))

    u_table = Table(
        "Figure 18(b): CDQ reduction vs CHT update frequency U (S = 0.5)",
        ["U", "cdqs", "reduction"],
    )
    for u in (1.0, 0.5, 0.25, 0.125, 0.0625):
        config = copu_config(6).with_strategy(s=0.5, u=u)
        pred = _hardware_cdqs(per_query, config)
        u_table.add_row(u, pred, format_percent(1.0 - pred / max(base, 1)))
    return [s_table, u_table]


# ---------------------------------------------------------------------------
# Section III-E: CPU software prediction
# ---------------------------------------------------------------------------


def sec3e_cpu_prediction(ctx: ExperimentContext) -> Table:
    """64-thread CPU model: CDQ and runtime reduction from prediction."""
    workloads = ctx.suite("mpnet-baxter")
    totals = {"base_cdqs": 0, "pred_cdqs": 0, "base_time": 0.0, "pred_time": 0.0}
    for workload in workloads:
        detector = CollisionDetector(workload.scene, workload.robot)
        motions = [m.as_motion() for m in workload.motions]
        base = run_parallel_batch(detector, motions, 64, CoarseStepScheduler(4))
        predictor = CHTPredictor.create(CoordHash(4), 4096, s=0.0, u=0.0)
        pred = run_parallel_batch(
            detector, motions, 64, CoarseStepScheduler(4), predictor
        )
        totals["base_cdqs"] += base.cdqs_executed
        totals["pred_cdqs"] += pred.cdqs_executed
        totals["base_time"] += base.runtime
        totals["pred_time"] += pred.runtime
    table = Table(
        "Section III-E: CPU (64 threads) software collision prediction",
        ["metric", "baseline", "predicted", "reduction"],
    )
    table.add_row(
        "executed CDQs",
        totals["base_cdqs"],
        totals["pred_cdqs"],
        format_percent(1.0 - totals["pred_cdqs"] / max(totals["base_cdqs"], 1)),
    )
    table.add_row(
        "runtime (model units)",
        f"{totals['base_time']:.1f}",
        f"{totals['pred_time']:.1f}",
        format_percent(1.0 - totals["pred_time"] / totals["base_time"]),
    )
    return table


# ---------------------------------------------------------------------------
# Section VI-B1: area and energy overheads
# ---------------------------------------------------------------------------


def sec6b1_overheads(ctx: ExperimentContext) -> Table:
    """CHT and queue overheads relative to a 24-CDU MPAccel build."""
    del ctx
    reference_area = EnergyModel.mpaccel_reference_area(num_cdus=24, groups=4)
    # Representative access energy per CDQ on the reference accelerator:
    # one OBB generation share plus a mean obstacle stream of ~7 tests.
    reference_energy_per_cdq = 7 * 15.0 + 25.0
    table = Table(
        "Section VI-B1: prediction hardware overheads vs MPAccel (24 CDUs)",
        ["component", "area (mm2)", "area overhead", "energy/use (pJ)", "energy overhead"],
    )
    for label, bits in (("CHT 4096x8b", 4096 * 8), ("CHT 4096x1b", 4096)):
        area = sram_area_mm2(bits)
        access = sram_access_energy_pj(bits)
        table.add_row(
            label,
            f"{area:.4f}",
            format_percent(area / reference_area, signed=False),
            f"{access:.2f}",
            format_percent(access / reference_energy_per_cdq, signed=False),
        )
    queue_area = 4 * sram_area_mm2((8 + 56) * 288)
    queue_energy = 2 * 1.1  # push + pop per CDQ
    table.add_row(
        "QCOLL+QNONCOLL (4 groups)",
        f"{queue_area:.4f}",
        format_percent(queue_area / reference_area, signed=False),
        f"{queue_energy:.2f}",
        format_percent(queue_energy / reference_energy_per_cdq, signed=False),
    )
    return table


# ---------------------------------------------------------------------------
# Section VII-1: sphere-based CDU
# ---------------------------------------------------------------------------


def sec7_sphere_cdu(ctx: ExperimentContext) -> Table:
    """Prediction for a sphere-representation accelerator (Jaco2)."""
    robot = jaco2()
    scenes = ctx.density_scenes("high", count=2)
    table = Table(
        "Section VII-1: sphere-CDU collision prediction (Jaco2, per-link keys)",
        ["scene", "motions", "colliding", "baseline-cdqs", "copu-cdqs", "reduction"],
    )
    for index, scene in enumerate(scenes):
        detector = CollisionDetector(scene, robot, representation="sphere")
        rng = np.random.default_rng(ctx.seed + index)
        motions = [
            Motion(robot.random_configuration(rng), robot.random_configuration(rng), 10)
            for _ in range(max(30, int(60 * ctx.scale)))
        ]
        traces = trace_motions_spheres(detector, motions)
        base = AcceleratorSimulator(baseline_config(6), rng=np.random.default_rng(9)).run(traces)
        pred = AcceleratorSimulator(copu_config(6), rng=np.random.default_rng(9)).run(traces)
        table.add_row(
            f"high-{index}",
            len(traces),
            sum(t.collides for t in traces),
            base.cdqs_executed,
            pred.cdqs_executed,
            format_percent(1.0 - pred.cdqs_executed / max(base.cdqs_executed, 1)),
        )
    return table


# ---------------------------------------------------------------------------
# Section VII-2: Dadu-P voxel accelerator
# ---------------------------------------------------------------------------


def sec7_dadu_p(ctx: ExperimentContext) -> Table:
    """Voxel-hashing prediction on the Dadu-P flow (PRM short motions)."""
    robot = jaco2()
    scene = ctx.density_scenes("high", count=1)[0]
    bounds = AABB(np.full(3, -1.0), np.full(3, 1.0))
    grid = voxelize_scene(scene, bounds, resolution=0.125)
    rng = np.random.default_rng(ctx.seed)
    roadmap = build_random_roadmap(robot, rng, num_vertices=24, connection_radius=4.5)
    octrees = []
    for motion_id, (a, b) in enumerate(roadmap.edges()[: max(20, int(40 * ctx.scale))]):
        poses = robot.interpolate(roadmap.vertices[a], roadmap.vertices[b], 5)
        pose_boxes = [robot.pose_obbs(q) for q in poses]
        octrees.append(build_motion_octree(motion_id, pose_boxes, bounds, max_depth=4))
    table = Table(
        "Section VII-2: Dadu-P voxel CDQs for colliding motions (vs naive)",
        ["policy", "colliding-motions", "colliding-cdqs", "reduction-vs-naive"],
    )
    sim = DaduSimulator(grid, cht_size=1024, qnoncoll_size=16, rng=np.random.default_rng(2))
    naive = sim.run(octrees, policy="naive")
    for policy in ("naive", "csp", "csp+copu", "oracle"):
        report = DaduSimulator(
            grid, cht_size=1024, qnoncoll_size=16, rng=np.random.default_rng(2)
        ).run(octrees, policy=policy)
        table.add_row(
            policy,
            report.colliding_motions,
            report.colliding_cdqs_executed,
            format_percent(report.reduction_vs(naive)),
        )
    return table
