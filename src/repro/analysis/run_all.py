"""Regenerate every figure/table and write the results to disk.

Usage::

    python -m repro.analysis.run_all [--scale 0.5] [--out benchmarks/results]

Runs the same experiment functions the pytest benches wrap, prints each
table, and writes one text file per experiment. (EXPERIMENTS.md embeds the
same tables with paper-vs-measured commentary.)
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from ..collision.pipeline import BACKENDS, set_default_backend
from . import ablations, experiments

#: (result-file stem, experiment function) in paper order.
EXPERIMENTS = [
    ("fig01_overview", experiments.fig01_overview),
    ("fig06_limit_study", experiments.fig06_limit_study),
    ("fig07_difficulty", experiments.fig07_difficulty_oracle),
    ("fig09_hashing", experiments.fig09_hash_functions),
    ("fig11_gpu_parallel", experiments.fig11_gpu_parallelism),
    ("fig13_strategies", experiments.fig13_strategies),
    ("fig14_update_freq", experiments.fig14_update_frequency),
    ("fig15_copu_reduction", experiments.fig15_copu_reduction),
    ("fig16_performance", experiments.fig16_performance),
    ("fig17_queue_size", experiments.fig17_queue_size),
    ("fig18_sensitivity", experiments.fig18_sensitivity),
    ("sec3e_cpu", experiments.sec3e_cpu_prediction),
    ("sec6b1_overhead", experiments.sec6b1_overheads),
    ("sec7_sphere", experiments.sec7_sphere_cdu),
    ("sec7_dadup", experiments.sec7_dadu_p),
    ("ablation_hash_bits", ablations.ablation_hash_bits),
    ("ablation_cht_size", ablations.ablation_cht_size),
    ("ablation_csp_step", ablations.ablation_csp_step),
    ("ablation_link_granularity", ablations.ablation_link_granularity),
    ("ablation_adaptive_s", ablations.ablation_adaptive_s),
    ("ablation_dynamic_history", ablations.ablation_dynamic_history),
]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="workload scale factor")
    parser.add_argument("--out", type=Path, default=Path("benchmarks/results"))
    parser.add_argument(
        "--only", nargs="*", default=None, help="run only the named experiments"
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="batch",
        help=(
            "motion-check engine (default: batch — the vectorized kernels, "
            "bit-identical to scalar for both predictor-free and CHT-predicted "
            "checks; pass 'scalar' for the canonical per-CDQ scan)"
        ),
    )
    args = parser.parse_args(argv)

    set_default_backend(args.backend)
    args.out.mkdir(parents=True, exist_ok=True)
    ctx = experiments.build_suites(scale=args.scale)
    for name, fn in EXPERIMENTS:
        if args.only and name not in args.only:
            continue
        start = time.perf_counter()
        tables = fn(ctx)
        if not isinstance(tables, list):
            tables = [tables]
        text = "\n\n".join(t.render() for t in tables)
        (args.out / f"{name}.txt").write_text(text + "\n")
        print(text)
        print(f"[{name}: {time.perf_counter() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
