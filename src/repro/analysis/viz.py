"""ASCII rendering of 2D scenes, paths and prediction state.

The offline environment has no plotting stack, so the examples and
debugging sessions use text rendering: obstacles as ``#``, free space as
``.``, path waypoints as ``o`` (start ``S``, goal ``G``), and optionally
the Collision History Table's hot bins as ``+``. Only meaningful for the
2D path-planning workloads; arm scenes have no faithful 2D projection.
"""

from __future__ import annotations

import numpy as np

from ..core.cht import CollisionHistoryTable
from ..core.hashing import CoordHash
from ..env.scene import Scene

__all__ = ["render_scene_2d", "render_cht_heatmap"]


def render_scene_2d(
    scene: Scene,
    path: list | None = None,
    workspace: tuple[float, float] = (-1.0, 1.0),
    width: int = 48,
    height: int = 24,
) -> str:
    """Render a 2D scene (and optional waypoint path) as an ASCII grid.

    The grid samples obstacle occupancy at cell centers; the path is
    drawn over it with straight-line interpolation between waypoints.
    """
    lo, hi = workspace
    grid = [["." for _ in range(width)] for _ in range(height)]

    def to_cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - lo) / (hi - lo) * (width - 1))
        row = int((hi - y) / (hi - lo) * (height - 1))
        return max(0, min(height - 1, row)), max(0, min(width - 1, col))

    for row in range(height):
        for col in range(width):
            x = lo + (col + 0.5) / width * (hi - lo)
            y = hi - (row + 0.5) / height * (hi - lo)
            if scene.point_collides([x, y, 0.0]):
                grid[row][col] = "#"

    if path:
        waypoints = [np.asarray(p, dtype=float)[:2] for p in path]
        for a, b in zip(waypoints[:-1], waypoints[1:]):
            steps = max(2, int(np.linalg.norm(b - a) / (hi - lo) * width * 2))
            for frac in np.linspace(0.0, 1.0, steps):
                p = a + frac * (b - a)
                row, col = to_cell(p[0], p[1])
                if grid[row][col] == ".":
                    grid[row][col] = "o"
        row, col = to_cell(*waypoints[0])
        grid[row][col] = "S"
        row, col = to_cell(*waypoints[-1])
        grid[row][col] = "G"

    return "\n".join("".join(line) for line in grid)


def render_cht_heatmap(
    table: CollisionHistoryTable,
    hash_function: CoordHash,
    workspace: tuple[float, float] = (-1.0, 1.0),
    width: int = 48,
    height: int = 24,
    z: float = 0.0,
) -> str:
    """Render which workspace cells the CHT currently predicts colliding.

    Samples a plane at height ``z``: cells whose hash entry predicts a
    collision print ``+``, cells with any recorded history print ``-``,
    untouched cells print ``.``. Makes the predictor's learned geography
    visible at a glance.
    """
    lo, hi = workspace
    lines = []
    for row in range(height):
        line = []
        for col in range(width):
            x = lo + (col + 0.5) / width * (hi - lo)
            y = hi - (row + 0.5) / height * (hi - lo)
            code = hash_function(np.array([x, y, z]))
            coll, noncoll = table.entry(code)
            if coll > table.s * noncoll and coll > 0:
                line.append("+")
            elif coll + noncoll > 0:
                line.append("-")
            else:
                line.append(".")
        lines.append("".join(line))
    return "\n".join(lines)
