"""CDQ trace record/replay.

The paper's artifact evaluates the COPU+CDU microarchitectural simulator on
*trace files*: per motion, the fully-enumerated list of CDQs with their
ground-truth outcomes, captured from planner runs. We mirror that flow:
:func:`trace_motion` exhaustively labels every CDQ of a motion (no early
exit — the trace must contain outcomes for queries a scheduler may or may
not execute), and the hardware simulator replays traces deciding which CDQs
actually execute.

Traces serialize to a compact JSON-lines format so benchmark workloads can
be captured once and replayed across accelerator configurations.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..collision.detector import CollisionDetector
from ..collision.pipeline import Motion

__all__ = ["CDQRecord", "PoseTrace", "MotionTrace", "trace_motion", "trace_motions", "save_traces", "load_traces"]


@dataclass
class CDQRecord:
    """One fully-labelled CDQ: hash input, ground truth, and CDU work.

    ``narrow_tests`` is the obstacle-stream position of the first hit (the
    cycles a flat CDU spends); ``full_tests`` is how many of those
    obstacles survived the bounding-sphere pre-filter and needed the full
    intersection stage (the extra cycles of a cascaded early-exit CDU
    [43]). ``full_tests`` defaults to ``narrow_tests`` for traces captured
    before the cascade model existed.
    """

    link_index: int
    center: tuple[float, float, float]
    collides: bool
    narrow_tests: int
    full_tests: int = -1

    def __post_init__(self) -> None:
        if self.full_tests < 0:
            self.full_tests = self.narrow_tests

    @classmethod
    def from_row(cls, row: dict) -> "CDQRecord":
        """Rebuild from a deserialized JSON object."""
        return cls(
            link_index=int(row["link_index"]),
            center=tuple(row["center"]),
            collides=bool(row["collides"]),
            narrow_tests=int(row["narrow_tests"]),
            full_tests=int(row.get("full_tests", -1)),
        )


@dataclass
class PoseTrace:
    """All CDQs of one discretized pose, in link order."""

    pose_index: int
    cdqs: list[CDQRecord] = field(default_factory=list)

    @property
    def collides(self) -> bool:
        """Pose-level ground truth: OR over its CDQs."""
        return any(c.collides for c in self.cdqs)


@dataclass
class MotionTrace:
    """All poses of one motion-environment check, in path order."""

    motion_id: int
    poses: list[PoseTrace] = field(default_factory=list)
    stage: str = "S1"

    @property
    def collides(self) -> bool:
        """Motion-level ground truth: OR over its poses."""
        return any(p.collides for p in self.poses)

    @property
    def num_cdqs(self) -> int:
        """Total CDQ population of the motion."""
        return sum(len(p.cdqs) for p in self.poses)


def trace_motion(
    detector: CollisionDetector, motion: Motion, motion_id: int = 0, stage: str = "S1"
) -> MotionTrace:
    """Exhaustively label every CDQ of a motion (no early exit)."""
    poses = detector.robot.interpolate(motion.start, motion.end, motion.num_poses)
    trace = MotionTrace(motion_id=motion_id, stage=stage)
    for pose_index, q in enumerate(poses):
        pose_trace = PoseTrace(pose_index=pose_index)
        for cdq in detector.pose_cdqs(q, pose_index):
            # Hardware CDUs stream every environment volume (no broad
            # phase); the trace records the stream position of the first
            # hit plus the cascaded-CDU full-test count (Sec. II-C / [43]).
            collides, tests, full = detector.scene.volume_cascade_work(
                cdq.geometry.volume
            )
            pose_trace.cdqs.append(
                CDQRecord(
                    link_index=cdq.geometry.link_index,
                    center=tuple(float(v) for v in cdq.geometry.center),
                    collides=collides,
                    narrow_tests=tests,
                    full_tests=full,
                )
            )
        trace.poses.append(pose_trace)
    return trace


def trace_motions(
    detector: CollisionDetector, motions: list[Motion], stage: str = "S1"
) -> list[MotionTrace]:
    """Trace a batch of motions with sequential ids."""
    return [
        trace_motion(detector, motion, motion_id=i, stage=stage)
        for i, motion in enumerate(motions)
    ]


def save_traces(traces: list[MotionTrace], path) -> None:
    """Write traces as JSON lines (one motion per line)."""
    with open(path, "w") as handle:
        for trace in traces:
            handle.write(json.dumps(asdict(trace)) + "\n")


def load_traces(path) -> list[MotionTrace]:
    """Load traces written by :func:`save_traces`."""
    traces = []
    with open(path) as handle:
        for line in handle:
            row = json.loads(line)
            motion = MotionTrace(motion_id=int(row["motion_id"]), stage=row.get("stage", "S1"))
            for pose_row in row["poses"]:
                pose = PoseTrace(pose_index=int(pose_row["pose_index"]))
                pose.cdqs = [CDQRecord.from_row(c) for c in pose_row["cdqs"]]
                motion.poses.append(pose)
            traces.append(motion)
    return traces
