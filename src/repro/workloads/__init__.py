"""Benchmark workloads: planner-generated motion streams, traces, grouping."""

from .benchmarks import (
    BENCHMARK_NAMES,
    PlannerWorkload,
    RecordedMotion,
    RecordingContext,
    generate_workload,
    make_benchmark,
)
from .difficulty import GROUP_LABELS, group_by_difficulty
from .io import iter_workload, load_workloads, save_workloads
from .stats import WorkloadStats, characterize_suite, characterize_workload
from .traces import (
    CDQRecord,
    MotionTrace,
    PoseTrace,
    load_traces,
    save_traces,
    trace_motion,
    trace_motions,
)

__all__ = [
    "BENCHMARK_NAMES",
    "PlannerWorkload",
    "RecordedMotion",
    "RecordingContext",
    "generate_workload",
    "make_benchmark",
    "GROUP_LABELS",
    "group_by_difficulty",
    "iter_workload",
    "load_workloads",
    "save_workloads",
    "WorkloadStats",
    "characterize_suite",
    "characterize_workload",
    "CDQRecord",
    "MotionTrace",
    "PoseTrace",
    "load_traces",
    "save_traces",
    "trace_motion",
    "trace_motions",
]
