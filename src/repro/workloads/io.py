"""Workload serialization (the artifact's trace-file role for planners).

The paper's artifact ships planner workloads as files so the accelerator
evaluation is decoupled from trace generation. This module does the same
for :class:`~repro.workloads.benchmarks.PlannerWorkload`: scenes and the
recorded motion checks round-trip through a JSON-lines format, so a
benchmark suite can be generated once and replayed across machines or
configurations.
"""

from __future__ import annotations

import json

import numpy as np

from ..env.scene import Scene
from ..geometry.obb import OBB
from ..kinematics import robots as robot_factories
from ..kinematics.robots import RobotModel
from .benchmarks import PlannerWorkload, RecordedMotion

__all__ = [
    "save_workloads",
    "load_workloads",
    "iter_workload",
    "scene_to_dict",
    "scene_from_dict",
]

#: Robot factories addressable by name in serialized workloads.
_ROBOT_FACTORIES = {
    "jaco2": robot_factories.jaco2,
    "kuka_iiwa": robot_factories.kuka_iiwa,
    "baxter": robot_factories.baxter_arm,
    "ur5": robot_factories.ur5,
    "panda": robot_factories.franka_panda,
    "planar2d": robot_factories.planar_2d,
}


def scene_to_dict(scene: Scene) -> dict:
    """Serialize a scene's obstacles to plain JSON types."""
    return {
        "name": scene.name,
        "obstacles": [
            {
                "center": [float(v) for v in box.center],
                "half_extents": [float(v) for v in box.half_extents],
                "rotation": [[float(v) for v in row] for row in box.rotation],
            }
            for box in scene.obstacles
        ],
    }


def scene_from_dict(data: dict) -> Scene:
    """Rebuild a scene from :func:`scene_to_dict` output."""
    return Scene(
        obstacles=[
            OBB(
                center=np.asarray(row["center"]),
                half_extents=np.asarray(row["half_extents"]),
                rotation=np.asarray(row["rotation"]),
            )
            for row in data["obstacles"]
        ],
        name=data.get("name", "scene"),
    )


def _robot_name(robot: RobotModel) -> str:
    if robot.name not in _ROBOT_FACTORIES:
        raise ValueError(
            f"robot {robot.name!r} is not serializable; known: {sorted(_ROBOT_FACTORIES)}"
        )
    return robot.name


def save_workloads(workloads: list[PlannerWorkload], path) -> None:
    """Write workloads as JSON lines (one planning query per line).

    Non-finite floats (NaN/inf) are rejected: Python's ``json`` would emit
    non-standard ``NaN``/``Infinity`` literals that other JSON parsers
    refuse, silently breaking cross-machine replay.
    """
    with open(path, "w") as handle:
        for workload in workloads:
            record = {
                "name": workload.name,
                "robot": _robot_name(workload.robot),
                "scene": scene_to_dict(workload.scene),
                "motions": [
                    {
                        "start": [float(v) for v in m.start],
                        "end": [float(v) for v in m.end],
                        "num_poses": m.num_poses,
                        "stage": m.stage,
                    }
                    for m in workload.motions
                ],
            }
            try:
                line = json.dumps(record, allow_nan=False)
            except ValueError as exc:
                raise ValueError(
                    f"workload {workload.name!r} contains non-finite floats "
                    "(NaN/inf) and cannot be serialized portably"
                ) from exc
            handle.write(line + "\n")


def _workload_from_record(record: dict) -> PlannerWorkload:
    """Rebuild one planning query from its JSON-lines record."""
    return PlannerWorkload(
        name=record["name"],
        scene=scene_from_dict(record["scene"]),
        robot=_ROBOT_FACTORIES[record["robot"]](),
        motions=[
            RecordedMotion(
                start=np.asarray(m["start"]),
                end=np.asarray(m["end"]),
                num_poses=int(m["num_poses"]),
                stage=m["stage"],
            )
            for m in record["motions"]
        ],
    )


def iter_workload(path):
    """Stream workloads from a JSON-lines file, one planning query at a time.

    Unlike :func:`load_workloads` this never materializes the whole trace,
    so the serving load generator can replay arbitrarily large files with
    bounded memory. Blank lines are skipped.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield _workload_from_record(json.loads(line))


def load_workloads(path) -> list[PlannerWorkload]:
    """Load workloads written by :func:`save_workloads`.

    Robots are reconstructed from their registered factories, so the
    loaded workload issues byte-identical CDQ streams.
    """
    return list(iter_workload(path))
