"""Workload characterization statistics.

Section III-A's motivating numbers ("52% - 93% of motions checked for
collision ... are colliding") are workload *properties*, not algorithm
outputs. This module computes them for any recorded workload so users can
verify their own benchmark suites sit in the regime where collision
prediction pays: colliding-motion fraction, per-stage breakdown, CDQ
population, and the per-motion difficulty distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..collision.detector import CollisionDetector
from .benchmarks import PlannerWorkload

__all__ = ["WorkloadStats", "characterize_workload", "characterize_suite"]


@dataclass
class WorkloadStats:
    """Summary statistics of one planning query's motion-check stream."""

    name: str
    num_motions: int = 0
    colliding_motions: int = 0
    total_cdqs: int = 0
    stage_motions: dict = field(default_factory=dict)
    stage_colliding: dict = field(default_factory=dict)
    motion_lengths: list = field(default_factory=list)

    @property
    def colliding_fraction(self) -> float:
        """Fraction of checked motions that collide (Sec. III-A metric)."""
        return self.colliding_motions / self.num_motions if self.num_motions else 0.0

    def stage_colliding_fraction(self, stage: str) -> float:
        """Colliding fraction restricted to one algorithm stage."""
        checked = self.stage_motions.get(stage, 0)
        return self.stage_colliding.get(stage, 0) / checked if checked else 0.0

    @property
    def mean_motion_length(self) -> float:
        """Mean C-space length of the checked motions."""
        return float(np.mean(self.motion_lengths)) if self.motion_lengths else 0.0

    def merged(self, other: "WorkloadStats") -> "WorkloadStats":
        """Combine two summaries (suite-level aggregation)."""
        merged = WorkloadStats(
            name=f"{self.name}+{other.name}",
            num_motions=self.num_motions + other.num_motions,
            colliding_motions=self.colliding_motions + other.colliding_motions,
            total_cdqs=self.total_cdqs + other.total_cdqs,
            motion_lengths=self.motion_lengths + other.motion_lengths,
        )
        for stats in (self, other):
            for stage, count in stats.stage_motions.items():
                merged.stage_motions[stage] = merged.stage_motions.get(stage, 0) + count
            for stage, count in stats.stage_colliding.items():
                merged.stage_colliding[stage] = (
                    merged.stage_colliding.get(stage, 0) + count
                )
        return merged


def characterize_workload(workload: PlannerWorkload) -> WorkloadStats:
    """Compute ground-truth statistics for one recorded workload."""
    detector = CollisionDetector(workload.scene, workload.robot)
    stats = WorkloadStats(name=workload.name)
    for motion in workload.motions:
        stats.num_motions += 1
        stats.stage_motions[motion.stage] = stats.stage_motions.get(motion.stage, 0) + 1
        stats.total_cdqs += motion.num_poses * workload.robot.num_links
        stats.motion_lengths.append(float(np.linalg.norm(motion.end - motion.start)))
        if detector.check_motion(motion.start, motion.end, motion.num_poses).collided:
            stats.colliding_motions += 1
            stats.stage_colliding[motion.stage] = (
                stats.stage_colliding.get(motion.stage, 0) + 1
            )
    return stats


def characterize_suite(workloads: list[PlannerWorkload]) -> WorkloadStats:
    """Aggregate statistics over a whole benchmark suite."""
    if not workloads:
        return WorkloadStats(name="empty")
    total = characterize_workload(workloads[0])
    for workload in workloads[1:]:
        total = total.merged(characterize_workload(workload))
    total.name = workloads[0].name.rsplit("-q", 1)[0]
    return total
