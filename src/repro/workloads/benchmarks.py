"""Benchmark workload generation (Sec. V).

A *benchmark* here is what the paper evaluates: a (motion planning
algorithm, robot) combination run over a set of environment scenarios and
planning queries, captured as the stream of motion-environment checks the
planner issued. The workload generator runs our planner implementations
and records every checked motion, so downstream consumers (software
pipeline comparisons, the hardware simulator) replay exactly the motions a
real planner would have checked.

The six paper combinations are exposed by name:
``mpnet-baxter``, ``mpnet-2d``, ``gnnmp-kuka``, ``gnnmp-2d``,
``bit*-kuka``, ``bit*-2d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..collision.detector import CollisionDetector
from ..collision.pipeline import Motion
from ..collision.scheduling import PoseScheduler
from ..env.generators import (
    narrow_gap_arm_scene,
    narrow_passage_2d_scene,
    random_2d_scene,
    tabletop_scene,
)
from ..env.scene import Scene
from ..kinematics.robots import RobotModel, baxter_arm, kuka_iiwa, planar_2d
from ..planners.base import CheckContext, Planner, PlanningProblem
from ..planners.bit_star import BITStarPlanner
from ..planners.gnn import EdgeScorer, GNNPlanner
from ..planners.mpnet import MPNetPlanner, NeuralSampler

__all__ = [
    "RecordedMotion",
    "PlannerWorkload",
    "RecordingContext",
    "generate_workload",
    "make_benchmark",
    "BENCHMARK_NAMES",
]

BENCHMARK_NAMES = (
    "mpnet-baxter",
    "mpnet-2d",
    "gnnmp-kuka",
    "gnnmp-2d",
    "bit*-kuka",
    "bit*-2d",
)


@dataclass
class RecordedMotion:
    """One motion check a planner issued, with its stage tag."""

    start: np.ndarray
    end: np.ndarray
    num_poses: int
    stage: str

    def as_motion(self) -> Motion:
        """Convert to the pipeline's :class:`Motion`."""
        return Motion(start=self.start, end=self.end, num_poses=self.num_poses)


@dataclass
class PlannerWorkload:
    """All motion checks of one planning query against one scene."""

    name: str
    scene: Scene
    robot: RobotModel
    motions: list[RecordedMotion] = field(default_factory=list)

    @property
    def num_motions(self) -> int:
        """Motion checks recorded."""
        return len(self.motions)

    def stage_motions(self, stage: str) -> list[RecordedMotion]:
        """Only the motions of one algorithm stage (S1 or S2)."""
        return [m for m in self.motions if m.stage == stage]


class RecordingContext(CheckContext):
    """A :class:`CheckContext` that also records every motion it checks."""

    def __init__(self, detector: CollisionDetector, scheduler: PoseScheduler | None = None, num_poses: int = 12):
        super().__init__(detector, scheduler=scheduler, predictor=None, num_poses=num_poses)
        self.recorded: list[RecordedMotion] = []

    def check_motion(self, start, end, stage: str = "S1", num_poses: int | None = None) -> bool:
        self.recorded.append(
            RecordedMotion(
                start=np.asarray(start, dtype=float).copy(),
                end=np.asarray(end, dtype=float).copy(),
                num_poses=num_poses or self.num_poses,
                stage=stage,
            )
        )
        return super().check_motion(start, end, stage, num_poses)


def _free_pose(detector: CollisionDetector, rng: np.random.Generator, attempts: int = 400) -> np.ndarray:
    """Sample a collision-free configuration (planning endpoints)."""
    for _ in range(attempts):
        q = detector.robot.random_configuration(rng)
        if not detector.check_pose(q).collided:
            return q
    raise RuntimeError("could not sample a free configuration")


def generate_workload(
    planner: Planner,
    robot: RobotModel,
    scene: Scene,
    rng: np.random.Generator,
    name: str = "workload",
    num_poses: int = 12,
) -> PlannerWorkload:
    """Run one planning query and record every motion check it issued."""
    detector = CollisionDetector(scene, robot)
    start = _free_pose(detector, rng)
    goal = _free_pose(detector, rng)
    context = RecordingContext(detector, num_poses=num_poses)
    planner.plan(PlanningProblem(robot=robot, scene=scene, start=start, goal=goal), context)
    return PlannerWorkload(name=name, scene=scene, robot=robot, motions=context.recorded)


def _arm_scene(rng: np.random.Generator, hard: bool) -> Scene:
    return narrow_gap_arm_scene(rng) if hard else tabletop_scene(rng, num_objects=9)


def _planar_scene(rng: np.random.Generator, hard: bool) -> Scene:
    return narrow_passage_2d_scene(rng) if hard else random_2d_scene(rng, num_obstacles=12)


def make_benchmark(
    name: str,
    rng: np.random.Generator,
    num_queries: int = 10,
    hard_fraction: float = 0.3,
    sampler: NeuralSampler | None = None,
    scorer: EdgeScorer | None = None,
) -> list[PlannerWorkload]:
    """Generate a named paper benchmark: a list of planning-query workloads.

    ``hard_fraction`` of queries use the narrow-passage scene family so the
    difficulty spread covers the G1-G5 grouping of Sec. VI-B. ``sampler`` /
    ``scorer`` supply trained networks for the MPNet / GNN planners (the
    untrained fallbacks are used otherwise).
    """
    if name not in BENCHMARK_NAMES:
        raise ValueError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")
    algo, domain = name.split("-")
    robot = {"baxter": baxter_arm, "kuka": kuka_iiwa, "2d": planar_2d}[domain]()

    workloads = []
    for query in range(num_queries):
        hard = rng.random() < hard_fraction
        if algo == "mpnet":
            planner: Planner = MPNetPlanner(
                sampler or NeuralSampler(robot.dof),
                rng,
                max_steps=60,
                max_replans=3,
                connect_threshold=1.5,
            )
        elif algo == "gnnmp":
            planner = GNNPlanner(scorer or EdgeScorer(), rng, num_samples=80, max_edge_checks=200)
        else:
            planner = BITStarPlanner(rng, batch_size=40, num_batches=3, max_edge_checks=200)
        # A hard scene can occasionally leave no free endpoints for this
        # robot; redraw the scene rather than fail the whole benchmark.
        for _attempt in range(8):
            scene = _planar_scene(rng, hard) if domain == "2d" else _arm_scene(rng, hard)
            try:
                workload = generate_workload(
                    planner, robot, scene, rng, name=f"{name}-q{query}"
                )
                break
            except RuntimeError:
                continue
        else:
            raise RuntimeError(f"could not build a feasible scene for {name} query {query}")
        workloads.append(workload)
    return workloads
