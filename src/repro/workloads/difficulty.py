"""Difficulty grouping of planning queries (G1-G5, Sec. VI-B).

"We use the number of CDQs performed during a motion planning query to
approximate its difficulty level and divide the benchmarks into five
equal-size groups, G1-G5, where the difficulty level increases from G1 to
G5." Group boundaries are quantiles of the per-query baseline CDQ counts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["group_by_difficulty", "GROUP_LABELS"]

GROUP_LABELS = ("G1", "G2", "G3", "G4", "G5")


def group_by_difficulty(items: list, costs: list[float], num_groups: int = 5) -> dict[str, list]:
    """Split ``items`` into equal-size groups by ascending ``costs``.

    Returns a dict mapping labels (``G1`` easiest ... ``G<n>`` hardest) to
    item lists. Sizes differ by at most one when the population does not
    divide evenly.
    """
    if len(items) != len(costs):
        raise ValueError("items and costs must be the same length")
    if num_groups < 1:
        raise ValueError("need at least one group")
    if num_groups > len(GROUP_LABELS):
        raise ValueError(f"at most {len(GROUP_LABELS)} groups supported")
    order = np.argsort(np.asarray(costs, dtype=float), kind="stable")
    groups: dict[str, list] = {GROUP_LABELS[g]: [] for g in range(num_groups)}
    splits = np.array_split(order, num_groups)
    for g, indices in enumerate(splits):
        groups[GROUP_LABELS[g]] = [items[int(i)] for i in indices]
    return groups
