"""Collision Detection Unit timing model.

Each CDU is the OBB-environment intersection engine of Shah et al. [43]: a
pipelined SAT datapath that streams environment volumes one per cycle and
exits early on the first hit. Its occupancy for one CDQ is therefore a base
pipeline-fill latency plus one cycle per narrow-phase obstacle test the
query actually performed (recorded in the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.traces import CDQRecord

__all__ = ["CDUnit"]


@dataclass
class CDUnit:
    """One CDU: either idle or busy with a query until ``busy_until``.

    With ``cascade`` enabled the unit models the cascaded early-exit
    design of Shah et al. [43]: every streamed obstacle costs one cycle in
    the bounding-sphere stage and only pre-filter survivors pay an extra
    cycle in the full intersection stage, so a query occupies the unit for
    ``base + narrow_tests + full_tests`` cycles instead of
    ``base + narrow_tests``. (A flat CDU is the special case where every
    obstacle is a "survivor" folded into the stream cost.)
    """

    unit_id: int
    base_latency: int = 4
    cascade: bool = False
    busy_until: int = -1
    current: CDQRecord | None = None
    queries_executed: int = field(default=0)
    tests_executed: int = field(default=0)
    full_tests_executed: int = field(default=0)

    def is_free(self, now: int) -> bool:
        """True when the unit can accept a query at cycle ``now``."""
        return now >= self.busy_until

    def service_cycles(self, query: CDQRecord) -> int:
        """Occupancy of one query under the configured CDU design."""
        cycles = self.base_latency + query.narrow_tests
        if self.cascade:
            cycles += query.full_tests
        return cycles

    def issue(self, query: CDQRecord, now: int) -> int:
        """Start a query; returns its completion cycle."""
        if not self.is_free(now):
            raise RuntimeError(f"CDU {self.unit_id} issued while busy")
        self.current = query
        self.busy_until = now + self.service_cycles(query)
        self.queries_executed += 1
        self.tests_executed += query.narrow_tests
        self.full_tests_executed += query.full_tests
        return self.busy_until

    def retire(self) -> CDQRecord:
        """Return and clear the completed query."""
        if self.current is None:
            raise RuntimeError(f"CDU {self.unit_id} retired with no query")
        query, self.current = self.current, None
        return query
