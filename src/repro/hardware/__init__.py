"""Hardware models: the COPU+CDU accelerator, energy/area, and variants."""

from .accelerator import AcceleratorSimulator, MotionSimResult, SimReport
from .cdu import CDUnit
from .config import AcceleratorConfig, TimingParams, baseline_config, copu_config
from .copu import COPUnit
from .dadu import DaduReport, DaduSimulator, DaduWorkItem
from .multi_group import MultiGroupAccelerator, MultiGroupReport
from .energy import (
    AreaBreakdown,
    EnergyBreakdown,
    EnergyModel,
    sram_access_energy_pj,
    sram_area_mm2,
)
from .sphere_accel import trace_motion_spheres, trace_motions_spheres

__all__ = [
    "AcceleratorSimulator",
    "MotionSimResult",
    "SimReport",
    "CDUnit",
    "AcceleratorConfig",
    "TimingParams",
    "baseline_config",
    "copu_config",
    "COPUnit",
    "DaduReport",
    "DaduSimulator",
    "DaduWorkItem",
    "MultiGroupAccelerator",
    "MultiGroupReport",
    "AreaBreakdown",
    "EnergyBreakdown",
    "EnergyModel",
    "sram_access_energy_pj",
    "sram_area_mm2",
    "trace_motion_spheres",
    "trace_motions_spheres",
]
