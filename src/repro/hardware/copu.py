"""The Collision Prediction Unit (COPU) datapath model — Sec. IV.

The COPU receives generated OBBs, hashes their centers with COORD, reads
the Collision History Table, and routes each query into QCOLL (predicted
colliding) or QNONCOLL. The Query Dispatcher drains QCOLL with priority and
takes from QNONCOLL only when it is full, or when the whole motion has been
received and QCOLL is empty. The Query Update Unit writes executed CDQ
outcomes back into the CHT (collision-free writes gated by ``U``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.cht import CollisionHistoryTable
from ..core.hashing import CoordHash
from ..workloads.traces import CDQRecord
from .config import AcceleratorConfig

__all__ = ["COPUnit"]


class COPUnit:
    """Hash generation + CHT + prediction queues + update unit."""

    def __init__(self, config: AcceleratorConfig, rng: np.random.Generator | None = None):
        self.config = config
        # Address bits follow the table size; the CoordHash bit width is
        # chosen so 3 * bits_per_axis covers the table (the CHT folds any
        # excess code bits by modulo, matching the hardware address slice).
        bits_per_axis = max(1, int(np.ceil(np.log2(config.cht_size) / 3.0)))
        self.hash_function = CoordHash(bits_per_axis=bits_per_axis)
        self.table = CollisionHistoryTable(
            size=config.cht_size,
            s=config.s,
            u=config.u,
            rng=rng if rng is not None else np.random.default_rng(0),
            counter_bits=config.counter_bits,
        )
        self.qcoll: deque[CDQRecord] = deque()
        self.qnoncoll: deque[CDQRecord] = deque()
        self.queue_ops = 0
        self.predictions = 0
        self.predicted_colliding = 0

    def has_capacity(self, predicted_queue_full_backpressure: bool = True) -> bool:
        """Can the COPU accept another OBB without overflowing a queue?

        QCOLL overflow stalls the front end (it is small and drains with
        priority); QNONCOLL overflow instead triggers dispatch from it, so
        it never blocks acceptance.
        """
        del predicted_queue_full_backpressure
        return len(self.qcoll) < self.config.qcoll_size

    def classify(self, query: CDQRecord) -> bool:
        """Predict and enqueue a query; returns the prediction."""
        code = self.hash_function(np.asarray(query.center))
        self.predictions += 1
        predicted = self.table.predict(code)
        if predicted:
            self.predicted_colliding += 1
            self.qcoll.append(query)
        else:
            self.qnoncoll.append(query)
        self.queue_ops += 1
        return predicted

    def qnoncoll_full(self) -> bool:
        """True when QNONCOLL reached its configured capacity."""
        return len(self.qnoncoll) >= self.config.qnoncoll_size

    def dispatch(self, all_received: bool) -> CDQRecord | None:
        """Query Dispatcher policy (Fig. 12 steps 5-6)."""
        if self.qcoll:
            self.queue_ops += 1
            return self.qcoll.popleft()
        if self.qnoncoll and (self.qnoncoll_full() or all_received):
            self.queue_ops += 1
            return self.qnoncoll.popleft()
        return None

    def update(self, query: CDQRecord) -> None:
        """Query Update Unit: write the executed outcome into the CHT."""
        code = self.hash_function(np.asarray(query.center))
        self.table.update(code, query.collides)

    def pending(self) -> int:
        """Queries waiting in either queue."""
        return len(self.qcoll) + len(self.qnoncoll)

    def flush(self) -> int:
        """Drop all queued queries (motion resolved); returns count dropped."""
        dropped = self.pending()
        self.qcoll.clear()
        self.qnoncoll.clear()
        return dropped

    def reset_history(self) -> None:
        """Clear the CHT (new planning query / environment measurement)."""
        self.table.reset()
