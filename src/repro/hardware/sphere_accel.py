"""Sphere-based CDU integration (Sec. VII-1).

The curobo-style accelerator [47] represents each robot link as a chain of
spheres; a CDQ is one sphere-environment test. The COPU integration differs
from the OBB flow in one way: prediction happens at *link* granularity —
the link's transformation matrix (hence its center) is computed first, the
link is predicted and queued, and only at dispatch are the link's spheres
expanded into individual CDQs.

We reproduce that by tracing sphere CDQs whose hash key is the *link
center* (all spheres of a link share a CHT entry) and replaying through the
standard :class:`~repro.hardware.accelerator.AcceleratorSimulator` — the
paper notes buffer sizes stay the same because queues store transformation
matrices.
"""

from __future__ import annotations

from ..collision.detector import CollisionDetector
from ..collision.pipeline import Motion
from ..kinematics.link_geometry import generate_link_spheres
from ..workloads.traces import CDQRecord, MotionTrace, PoseTrace

__all__ = ["trace_motion_spheres", "trace_motions_spheres"]


def trace_motion_spheres(
    detector: CollisionDetector, motion: Motion, motion_id: int = 0, stage: str = "S1"
) -> MotionTrace:
    """Exhaustively label every sphere CDQ of a motion.

    Each record's ``center`` is the owning link's center (the Sec. VII-1
    prediction key); ``narrow_tests`` is the sphere's obstacle-stream cost.
    """
    robot = detector.robot
    poses = robot.interpolate(motion.start, motion.end, motion.num_poses)
    trace = MotionTrace(motion_id=motion_id, stage=stage)
    for pose_index, q in enumerate(poses):
        pose_trace = PoseTrace(pose_index=pose_index)
        link_centers = robot.link_centers(q)
        for geom in generate_link_spheres(robot, q):
            collides, tests = detector.scene.volume_stream_work(geom.volume)
            link_center = link_centers[min(geom.link_index, len(link_centers) - 1)]
            pose_trace.cdqs.append(
                CDQRecord(
                    link_index=geom.link_index,
                    center=tuple(float(v) for v in link_center),
                    collides=collides,
                    narrow_tests=tests,
                )
            )
        trace.poses.append(pose_trace)
    return trace


def trace_motions_spheres(
    detector: CollisionDetector, motions: list[Motion], stage: str = "S1"
) -> list[MotionTrace]:
    """Trace a batch of motions in the sphere representation."""
    return [
        trace_motion_spheres(detector, motion, motion_id=i, stage=stage)
        for i, motion in enumerate(motions)
    ]
