"""Multi-group accelerator model (the MPAccel-24 build of Sec. VI-B1).

The paper's overhead analysis targets an MPAccel [43] configuration with
24 CDUs organised as four groups, each group owning one OBB Generation
Unit, one COPU, and one QCOLL/QNONCOLL pair. Groups process *different
motions* concurrently (motion-level parallelism), while within a group
the Fig. 12 pipeline applies unchanged.

This module composes four (or ``num_groups``) single-group
:class:`~repro.hardware.accelerator.AcceleratorSimulator` instances with a
shared motion queue: the next pending motion goes to the first group that
frees up — a standard dynamic work distribution. The per-group CHTs are
private, as in the paper (each COPU serves its own CDU group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..collision.scheduling import PoseScheduler
from ..workloads.traces import MotionTrace
from .accelerator import AcceleratorSimulator, MotionSimResult
from .config import AcceleratorConfig
from .energy import AreaBreakdown, EnergyModel

__all__ = ["MultiGroupReport", "MultiGroupAccelerator"]


@dataclass
class MultiGroupReport:
    """Aggregate outcome of a multi-group run."""

    num_groups: int
    makespan_cycles: int
    motions: list[MotionSimResult] = field(default_factory=list)
    group_busy_cycles: list[int] = field(default_factory=list)
    area: AreaBreakdown | None = None

    @property
    def cdqs_executed(self) -> int:
        """Executed CDQs over the workload."""
        return sum(m.cdqs_executed for m in self.motions)

    @property
    def throughput(self) -> float:
        """Motion checks per cycle at the accelerator level."""
        return len(self.motions) / self.makespan_cycles if self.makespan_cycles else 0.0

    @property
    def load_balance(self) -> float:
        """Min/max busy-cycle ratio across groups (1.0 = perfectly even)."""
        if not self.group_busy_cycles or max(self.group_busy_cycles) == 0:
            return 1.0
        return min(self.group_busy_cycles) / max(self.group_busy_cycles)


class MultiGroupAccelerator:
    """Several CDU groups working a shared motion queue."""

    def __init__(
        self,
        group_config: AcceleratorConfig,
        num_groups: int = 4,
        scheduler: PoseScheduler | None = None,
        seed: int = 0,
    ):
        if num_groups < 1:
            raise ValueError("need at least one group")
        self.num_groups = num_groups
        self.group_config = group_config
        self.groups = [
            AcceleratorSimulator(
                group_config, scheduler=scheduler, rng=np.random.default_rng(seed + g)
            )
            for g in range(num_groups)
        ]

    def run(self, traces: list[MotionTrace]) -> MultiGroupReport:
        """Distribute motions dynamically over the groups.

        Greedy earliest-available-group assignment: equivalent to a shared
        FIFO of motion checks served by ``num_groups`` pipelines.
        """
        available = [0] * self.num_groups
        busy = [0] * self.num_groups
        report = MultiGroupReport(num_groups=self.num_groups, makespan_cycles=0)
        for trace in traces:
            group = int(np.argmin(available))
            result = self.groups[group].simulate_motion(trace)
            available[group] += result.cycles
            busy[group] += result.cycles
            report.motions.append(result)
        report.makespan_cycles = max(available) if available else 0
        report.group_busy_cycles = busy
        # Total area: per-group area times group count, minus the shared
        # control block counted once.
        per_group = EnergyModel(self.group_config).area()
        report.area = AreaBreakdown(
            cdus=per_group.cdus * self.num_groups,
            obb_generation=per_group.obb_generation * self.num_groups,
            control=per_group.control,
            cht=per_group.cht * self.num_groups,
            queues=per_group.queues * self.num_groups,
            hash_generation=per_group.hash_generation * self.num_groups,
        )
        return report
