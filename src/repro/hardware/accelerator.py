"""Cycle-level simulator of the collision-detection accelerator (Fig. 12).

Replays :class:`~repro.workloads.traces.MotionTrace` workloads through the
modelled pipeline:

1. The scheduler streams the motion's poses (CSP order by default) into the
   OBB Generation Unit, which emits one OBB per cycle after a forward-
   kinematics fill latency.
2. With a COPU, each OBB is hashed and classified into QCOLL or QNONCOLL;
   the Query Dispatcher issues QCOLL queries with priority and QNONCOLL
   queries only when that queue is full or the motion is fully received
   with QCOLL empty. Without a COPU, OBBs flow through a plain FIFO.
3. CDUs execute queries (base latency + one cycle per narrow-phase test,
   from the trace) and report outcomes; the first colliding result resolves
   the motion, dropping everything still queued or not yet generated.
4. Executed outcomes update the CHT through the Query Update Unit.

The simulator counts cycles, executed/skipped CDQs, queue and CHT traffic,
and generated OBBs; :class:`~repro.hardware.energy.EnergyModel` converts
the counters into energy, and the report derives throughput, perf/watt and
perf/mm^2 exactly as the paper's Fig. 16.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..collision.scheduling import CoarseStepScheduler, PoseScheduler
from ..workloads.traces import CDQRecord, MotionTrace
from .cdu import CDUnit
from .config import AcceleratorConfig
from .copu import COPUnit
from .energy import AreaBreakdown, EnergyBreakdown, EnergyModel

__all__ = ["MotionSimResult", "SimReport", "AcceleratorSimulator"]


@dataclass
class MotionSimResult:
    """Timing and work of one simulated motion check."""

    motion_id: int
    collided: bool
    cycles: int
    cdqs_executed: int
    cdqs_skipped: int
    obbs_generated: int
    cdu_busy_cycles: int = 0

    @property
    def utilization_numerator(self) -> int:
        """Busy CDU-cycles (for aggregate utilization)."""
        return self.cdu_busy_cycles


@dataclass
class SimReport:
    """Aggregate results of a simulated workload."""

    config_name: str
    motions: list[MotionSimResult] = field(default_factory=list)
    cdu_tests: int = 0
    cht_reads: int = 0
    cht_writes: int = 0
    queue_ops: int = 0
    area: AreaBreakdown | None = None
    energy: EnergyBreakdown | None = None

    @property
    def total_cycles(self) -> int:
        """Sequential cycles over all motions."""
        return sum(m.cycles for m in self.motions)

    @property
    def cdqs_executed(self) -> int:
        """Executed CDQs over the workload."""
        return sum(m.cdqs_executed for m in self.motions)

    @property
    def cdqs_skipped(self) -> int:
        """CDQs eliminated by early exit / prediction."""
        return sum(m.cdqs_skipped for m in self.motions)

    @property
    def mean_latency(self) -> float:
        """Average end-to-end cycles per motion check."""
        return self.total_cycles / len(self.motions) if self.motions else 0.0

    def cdu_utilization(self, num_cdus: int) -> float:
        """Fraction of CDU-cycles spent executing queries.

        A diagnostic for dispatcher policies: the COPU Query Dispatcher
        deliberately idles CDUs while holding QNONCOLL back, trading
        utilization for energy (Sec. VI-B2).
        """
        capacity = self.total_cycles * num_cdus
        if capacity == 0:
            return 0.0
        busy = sum(m.cdu_busy_cycles for m in self.motions)
        return min(1.0, busy / capacity)

    @property
    def throughput(self) -> float:
        """Motion checks per cycle."""
        return len(self.motions) / self.total_cycles if self.total_cycles else 0.0

    @property
    def perf_per_watt(self) -> float:
        """Motions per unit energy (throughput / power)."""
        if self.energy is None or self.energy.total == 0.0:
            return 0.0
        return len(self.motions) / self.energy.total

    @property
    def perf_per_mm2(self) -> float:
        """Throughput per unit area."""
        if self.area is None or self.area.total == 0.0:
            return 0.0
        return self.throughput / self.area.total


class AcceleratorSimulator:
    """Simulates one accelerator configuration over trace workloads."""

    def __init__(
        self,
        config: AcceleratorConfig,
        scheduler: PoseScheduler | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config
        self.scheduler = scheduler or CoarseStepScheduler(4)
        self.energy_model = EnergyModel(config)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.copu = COPUnit(config, rng=self.rng) if config.use_copu else None

    def _ordered_stream(self, trace: MotionTrace) -> list[CDQRecord]:
        """The motion's CDQs in scheduler pose order (the OBB feed)."""
        order = self.scheduler.order(len(trace.poses))
        stream = []
        for pose_index in order:
            stream.extend(trace.poses[pose_index].cdqs)
        return stream

    def simulate_motion(self, trace: MotionTrace) -> MotionSimResult:
        """Cycle-step one motion-environment check through the pipeline."""
        cfg = self.config
        timing = cfg.timing
        stream = self._ordered_stream(trace)
        total = len(stream)
        feed = 0  # next stream index to generate
        fifo: deque[CDQRecord] = deque()  # baseline path (no COPU)
        cdus = [
            CDUnit(i, base_latency=timing.cdu_base_latency, cascade=cfg.cascade)
            for i in range(cfg.num_cdus)
        ]
        front_latency = timing.fk_latency + (timing.predict_latency if self.copu else 0)

        cycle = 0
        executed = 0
        obbs_generated = 0
        busy_cycles = 0
        resolved = False

        def pending() -> int:
            return len(fifo) if self.copu is None else self.copu.pending()

        while True:
            # 1. Retire completing CDUs.
            for unit in cdus:
                if unit.current is not None and cycle >= unit.busy_until:
                    query = unit.retire()
                    if self.copu is not None:
                        self.copu.update(query)
                    if query.collides:
                        resolved = True

            if resolved:
                # Collision found: everything queued or never generated is
                # skipped. In-flight queries were counted at issue time
                # (they complete in the shadow); latency is to resolution.
                if self.copu is not None:
                    self.copu.flush()
                fifo.clear()
                return MotionSimResult(
                    motion_id=trace.motion_id,
                    collided=True,
                    cycles=cycle,
                    cdqs_executed=executed,
                    cdqs_skipped=total - executed,
                    obbs_generated=obbs_generated,
                    cdu_busy_cycles=busy_cycles,
                )

            # 2. Front end: generate and classify OBBs.
            if feed < total and cycle >= front_latency:
                for _ in range(timing.obbs_per_cycle):
                    if feed >= total:
                        break
                    if self.copu is not None:
                        if not self.copu.has_capacity():
                            break  # QCOLL backpressure
                        self.copu.classify(stream[feed])
                    else:
                        fifo.append(stream[feed])
                    feed += 1
                    obbs_generated += 1

            all_received = feed >= total

            # 3. Dispatch to free CDUs.
            for unit in cdus:
                if not unit.is_free(cycle) or unit.current is not None:
                    continue
                if self.copu is not None:
                    query = self.copu.dispatch(all_received)
                else:
                    query = fifo.popleft() if fifo else None
                if query is None:
                    break
                busy_cycles += unit.service_cycles(query)
                unit.issue(query, cycle)
                executed += 1

            # 4. Termination: every query executed and all CDUs drained.
            busy = [u.busy_until for u in cdus if u.current is not None]
            if all_received and pending() == 0 and not busy:
                return MotionSimResult(
                    motion_id=trace.motion_id,
                    collided=False,
                    cycles=cycle,
                    cdqs_executed=executed,
                    cdqs_skipped=0,
                    obbs_generated=obbs_generated,
                    cdu_busy_cycles=busy_cycles,
                )

            # 5. Advance time — skip dead cycles to the next event.
            next_cycle = cycle + 1
            can_feed = feed < total and (
                self.copu is None or self.copu.has_capacity()
            )
            can_dispatch = pending() > 0 and any(
                u.is_free(cycle + 1) and u.current is None for u in cdus
            )
            if not can_feed and not can_dispatch and busy:
                next_cycle = max(cycle + 1, min(busy))
            elif not can_feed and not busy and pending() > 0:
                # Dispatcher is waiting on the QNONCOLL release condition;
                # one cycle is enough to re-evaluate (all_received may flip).
                next_cycle = cycle + 1
            if cycle < front_latency:
                next_cycle = max(next_cycle, min(front_latency, *(busy or [front_latency])))
            cycle = next_cycle

    def run(self, traces: list[MotionTrace], reset_between_queries: bool = False) -> SimReport:
        """Simulate a trace workload; returns the aggregate report.

        ``reset_between_queries`` clears the CHT before every motion,
        modelling each motion as its own planning query. The default keeps
        history across the batch (one planning query, one environment).
        """
        report = SimReport(config_name=self.config.name)
        for trace in traces:
            if reset_between_queries and self.copu is not None:
                self.copu.reset_history()
            report.motions.append(self.simulate_motion(trace))
        report.cdu_tests = self._gather_tests(traces, report)
        if self.copu is not None:
            report.cht_reads = self.copu.table.reads
            report.cht_writes = self.copu.table.writes
            report.queue_ops = self.copu.queue_ops
        report.area = self.energy_model.area()
        report.energy = self.energy_model.energy(
            cdu_tests=report.cdu_tests,
            obbs_generated=sum(m.obbs_generated for m in report.motions),
            cht_reads=report.cht_reads,
            cht_writes=report.cht_writes,
            queue_ops=report.queue_ops,
            cycles=report.total_cycles,
        )
        return report

    def _gather_tests(self, traces: list[MotionTrace], report: SimReport) -> int:
        """Approximate narrow-phase test count of executed CDQs.

        The per-motion simulation does not retain which specific CDQs ran,
        so executed tests are estimated from each motion's mean tests/CDQ —
        exact for collision-free motions (all CDQs run) and a faithful
        expectation for resolved ones.
        """
        total = 0
        for trace, result in zip(traces, report.motions):
            cdqs = [c for pose in trace.poses for c in pose.cdqs]
            if not cdqs:
                continue
            mean_tests = sum(c.narrow_tests for c in cdqs) / len(cdqs)
            total += int(round(mean_tests * result.cdqs_executed))
        return total
