"""Analytic 45 nm area and energy model (OpenRAM/FreePDK substitution).

The paper sizes the CHT and queues with the OpenRAM memory compiler on
FreePDK45 (Sec. V) and reports *relative* overheads against the MPAccel
baseline [43] (Sec. VI-B1). Since OpenRAM is unavailable offline, this
module provides an analytic model of SRAM macros (linear bit-area plus
fixed periphery; access energy growing with the square root of capacity)
and per-unit logic constants for the datapath blocks, calibrated so the
relative overheads land where the paper reports them:

* CHT 4096 x 8 bit vs. 24-CDU MPAccel: ~2% area, ~1% energy.
* CHT 4096 x 1 bit: ~0.55% area, ~0.28% energy.
* QCOLL + QNONCOLL queues: ~2.6% area, ~1.4% energy.

Absolute numbers are plausible for 45 nm but only ratios are meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import AcceleratorConfig

__all__ = ["EnergyModel", "EnergyBreakdown", "AreaBreakdown", "sram_area_mm2", "sram_access_energy_pj"]

# SRAM macro model: bit cells plus fixed periphery (decoders, sense amps).
_SRAM_MM2_PER_BIT = 1.2e-6
_SRAM_PERIPHERY_MM2 = 0.010
_SRAM_ENERGY_BASE_PJ = 0.5
_SRAM_ENERGY_PER_SQRT_BIT_PJ = 0.009

# Datapath blocks (per-unit constants, 45 nm class).
_CDU_AREA_MM2 = 0.080
_OBBGEN_AREA_MM2 = 0.120
_CONTROL_AREA_MM2 = 0.300
_HASHGEN_AREA_MM2 = 0.004

_CDU_TEST_ENERGY_PJ = 15.0  # one OBB-obstacle SAT test
_OBBGEN_ENERGY_PJ = 25.0  # FK + one OBB emission
_HASH_ENERGY_PJ = 0.4
_QUEUE_OP_ENERGY_PJ = 1.1  # push or pop of one OBB descriptor
_LEAKAGE_MW_PER_MM2 = 1.4  # static power density
_CYCLE_NS = 1.0  # 1 GHz clock

#: Bits of one queue entry: an OBB descriptor (center, half-extents and a
#: compressed rotation, all 16-bit fixed point) plus motion/pose tags.
_QUEUE_ENTRY_BITS = 288


def sram_area_mm2(bits: int) -> float:
    """Area of an SRAM macro of the given capacity."""
    if bits <= 0:
        return 0.0
    return bits * _SRAM_MM2_PER_BIT + _SRAM_PERIPHERY_MM2


def sram_access_energy_pj(bits: int) -> float:
    """Energy of one read or write access to an SRAM macro."""
    if bits <= 0:
        return 0.0
    return _SRAM_ENERGY_BASE_PJ + _SRAM_ENERGY_PER_SQRT_BIT_PJ * math.sqrt(bits)


@dataclass
class AreaBreakdown:
    """Per-component silicon area in mm^2."""

    cdus: float
    obb_generation: float
    control: float
    cht: float
    queues: float
    hash_generation: float

    @property
    def total(self) -> float:
        """Total accelerator area."""
        return (
            self.cdus
            + self.obb_generation
            + self.control
            + self.cht
            + self.queues
            + self.hash_generation
        )

    @property
    def prediction_overhead(self) -> float:
        """Fraction of total area spent on prediction hardware."""
        added = self.cht + self.queues + self.hash_generation
        return added / self.total if self.total else 0.0


@dataclass
class EnergyBreakdown:
    """Dynamic + static energy of a simulated run, in pJ."""

    cdu_tests: float = 0.0
    obb_generation: float = 0.0
    cht_accesses: float = 0.0
    queue_operations: float = 0.0
    hash_generation: float = 0.0
    leakage: float = 0.0

    @property
    def total(self) -> float:
        """Total energy."""
        return (
            self.cdu_tests
            + self.obb_generation
            + self.cht_accesses
            + self.queue_operations
            + self.hash_generation
            + self.leakage
        )

    @property
    def prediction_overhead(self) -> float:
        """Fraction of energy spent on prediction hardware."""
        added = self.cht_accesses + self.queue_operations + self.hash_generation
        return added / self.total if self.total else 0.0


class EnergyModel:
    """Charges area and energy for one accelerator configuration."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        self.cht_bits = config.cht_size * config.cht_entry_bits if config.use_copu else 0
        queue_bits = (
            (config.qcoll_size + config.qnoncoll_size) * _QUEUE_ENTRY_BITS
            if config.use_copu
            else 0
        )
        self.queue_bits = queue_bits
        self._cht_access_pj = sram_access_energy_pj(self.cht_bits)
        self._queue_access_pj = _QUEUE_OP_ENERGY_PJ

    def area(self) -> AreaBreakdown:
        """Static area of the configured accelerator."""
        cfg = self.config
        return AreaBreakdown(
            cdus=cfg.num_cdus * _CDU_AREA_MM2,
            obb_generation=_OBBGEN_AREA_MM2,
            control=_CONTROL_AREA_MM2,
            cht=sram_area_mm2(self.cht_bits),
            queues=sram_area_mm2(self.queue_bits),
            hash_generation=_HASHGEN_AREA_MM2 if cfg.use_copu else 0.0,
        )

    def energy(
        self,
        cdu_tests: int,
        obbs_generated: int,
        cht_reads: int,
        cht_writes: int,
        queue_ops: int,
        cycles: int,
    ) -> EnergyBreakdown:
        """Energy of a run given its activity counters."""
        leakage_pj = (
            self.area().total * _LEAKAGE_MW_PER_MM2 * cycles * _CYCLE_NS
        )  # mW * ns = pJ
        return EnergyBreakdown(
            cdu_tests=cdu_tests * _CDU_TEST_ENERGY_PJ,
            obb_generation=obbs_generated * _OBBGEN_ENERGY_PJ,
            cht_accesses=(cht_reads + cht_writes) * self._cht_access_pj,
            queue_operations=queue_ops * self._queue_access_pj,
            hash_generation=cht_reads * _HASH_ENERGY_PJ,
            leakage=leakage_pj,
        )

    @staticmethod
    def mpaccel_reference_area(num_cdus: int = 24, groups: int = 4) -> float:
        """Area of the MPAccel [43] reference build (Sec. VI-B1 baseline).

        24 CDUs with one OBB Generation Unit per 6-CDU group plus control.
        """
        return num_cdus * _CDU_AREA_MM2 + groups * _OBBGEN_AREA_MM2 + _CONTROL_AREA_MM2
