"""Dadu-P-style voxel accelerator with CSP and COPU (Sec. VII-2).

Dadu-P [31] plans over a fixed set of short motions whose swept volumes are
precomputed as octrees; at runtime each short motion is tested against the
environment's occupied voxels — one CDQ per (motion octree, voxel) pair,
with early exit once any voxel is inside the sweep. Prediction hashes the
*voxel coordinates*: a voxel that collided with one motion's sweep tends to
collide with spatially overlapping motions, so the voxel history transfers
across motions within a planning query.

The paper evaluates three schedules over a motion's voxel stream:

* **naive** — voxels in storage (row-major) order;
* **CSP** — coarse-step reordering [43] so spatially distant voxels are
  probed first;
* **CSP + COPU** — CSP order filtered through the queue-based predictor:
  predicted-colliding voxels execute immediately, others wait in a bounded
  QNONCOLL that only drains when full (or when the stream is exhausted).

The limit (oracle) needs exactly one CDQ per colliding motion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..collision.scheduling import CoarseStepScheduler
from ..core.cht import CollisionHistoryTable
from ..core.hashing import CoordHash
from ..env.octree import MotionOctree
from ..env.voxels import VoxelGrid

__all__ = ["DaduWorkItem", "DaduReport", "DaduSimulator"]


@dataclass
class DaduWorkItem:
    """One short-motion collision check: an octree vs. the voxel set."""

    octree: MotionOctree
    #: Ground truth per voxel (computed lazily by the simulator).
    outcomes: list[bool] = field(default_factory=list)

    @property
    def collides(self) -> bool:
        """Motion-level ground truth."""
        return any(self.outcomes)


@dataclass
class DaduReport:
    """CDQ counts per scheduling policy over a motion population."""

    policy: str
    cdqs_executed: int = 0
    colliding_motions: int = 0
    colliding_cdqs_executed: int = 0
    free_cdqs_executed: int = 0

    def reduction_vs(self, other: "DaduReport", colliding_only: bool = True) -> float:
        """Fractional CDQ reduction relative to another policy's report."""
        mine = self.colliding_cdqs_executed if colliding_only else self.cdqs_executed
        theirs = other.colliding_cdqs_executed if colliding_only else other.cdqs_executed
        if theirs == 0:
            return 0.0
        return 1.0 - mine / theirs


class DaduSimulator:
    """Counts CDQs for the Dadu-P flow under different schedules."""

    def __init__(
        self,
        grid: VoxelGrid,
        cht_size: int = 1024,
        qnoncoll_size: int = 16,
        csp_step: int = 7,
        rng: np.random.Generator | None = None,
    ):
        self.grid = grid
        self.voxels = grid.occupied_centers()
        self.cht_size = cht_size
        self.qnoncoll_size = qnoncoll_size
        self.csp_step = csp_step
        self.rng = rng if rng is not None else np.random.default_rng(0)
        bits = max(1, int(np.ceil(np.log2(max(cht_size, 2)) / 3.0)))
        self.hash_function = CoordHash(bits_per_axis=bits)

    def _labelled(self, octree: MotionOctree) -> list[bool]:
        """Ground-truth outcome of every voxel CDQ for one motion."""
        return [bool(octree.collides_voxel(v)) for v in self.voxels]

    def _order(self, policy: str) -> list[int]:
        count = len(self.voxels)
        if count == 0:
            return []
        if policy == "naive":
            return list(range(count))
        return CoarseStepScheduler(self.csp_step).order(count)

    def run(self, octrees: list[MotionOctree], policy: str = "csp+copu") -> DaduReport:
        """Count executed CDQs for the motion population under ``policy``.

        Policies: ``naive``, ``csp``, ``csp+copu``, ``oracle``.
        """
        if policy not in ("naive", "csp", "csp+copu", "oracle"):
            raise ValueError(f"unknown policy {policy!r}")
        report = DaduReport(policy=policy)
        table = CollisionHistoryTable(size=self.cht_size, s=0.0, u=0.0, rng=self.rng)
        for octree in octrees:
            outcomes = self._labelled(octree)
            colliding = any(outcomes)
            if colliding:
                report.colliding_motions += 1
            executed = self._run_motion(outcomes, policy, table)
            report.cdqs_executed += executed
            if colliding:
                report.colliding_cdqs_executed += executed
            else:
                report.free_cdqs_executed += executed
        return report

    def _run_motion(
        self, outcomes: list[bool], policy: str, table: CollisionHistoryTable
    ) -> int:
        if not outcomes:
            return 0
        if policy == "oracle":
            return 1 if any(outcomes) else len(outcomes)
        order = self._order("naive" if policy == "naive" else "csp")
        if policy in ("naive", "csp"):
            executed = 0
            for idx in order:
                executed += 1
                if outcomes[idx]:
                    break
            return executed
        # csp+copu: queue-based prediction over the CSP stream.
        executed = 0
        queue: deque[int] = deque()
        codes = [self.hash_function(self.voxels[idx]) for idx in range(len(outcomes))]

        def execute(idx: int) -> bool:
            nonlocal executed
            executed += 1
            table.update(codes[idx], outcomes[idx])
            return outcomes[idx]

        for idx in order:
            if table.predict(codes[idx]):
                if execute(idx):
                    return executed
            else:
                queue.append(idx)
                if len(queue) >= self.qnoncoll_size:
                    if execute(queue.popleft()):
                        return executed
        while queue:
            if execute(queue.popleft()):
                return executed
        return executed
