"""Configuration of the collision-detection accelerator model (Fig. 12).

The baseline accelerator follows Shah et al. [43]: a scheduler feeds poses
to an OBB Generation Unit; generated OBBs go to OBB-environment Collision
Detection Units (CDUs). The COPU extension adds per-group hash generation,
a Collision History Table, the QCOLL/QNONCOLL queues and the priority Query
Dispatcher.

Configurations are named like the paper: ``COPU.x`` / ``baseline.x`` where
``x`` is the number of CDUs served by one COPU/OBB-generation group
(Sec. VI-B2 evaluates x = 1, 4, 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TimingParams", "AcceleratorConfig", "copu_config", "baseline_config"]


@dataclass(frozen=True)
class TimingParams:
    """Latency/throughput parameters of the pipeline stages, in cycles.

    Values follow the baseline accelerator's pipeline structure: forward
    kinematics (chained 4x4 matrix multiplies) has a few-cycle startup per
    pose, then one OBB is emitted per cycle; the COPU adds hash generation
    plus one CHT read; a CDU streams one environment volume per cycle
    through the SAT pipeline after a short fill.
    """

    fk_latency: int = 4
    obbs_per_cycle: int = 4
    predict_latency: int = 2
    cdu_base_latency: int = 4
    cht_update_latency: int = 1

    def __post_init__(self) -> None:
        if self.obbs_per_cycle < 1:
            raise ValueError("OBB generation rate must be >= 1 per cycle")
        for name in ("fk_latency", "predict_latency", "cdu_base_latency", "cht_update_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator build point."""

    name: str = "copu.6"
    num_cdus: int = 6
    use_copu: bool = True
    #: Model the cascaded early-exit CDU of Shah et al. [43]: a bounding-
    #: sphere pre-filter stage ahead of the full intersection stage.
    cascade: bool = False
    qcoll_size: int = 8
    qnoncoll_size: int = 56
    cht_size: int = 4096
    s: float = 1.0
    u: float = 1.0
    counter_bits: int = 4
    timing: TimingParams = TimingParams()

    def __post_init__(self) -> None:
        if self.num_cdus < 1:
            raise ValueError("need at least one CDU")
        if self.use_copu and (self.qcoll_size < 1 or self.qnoncoll_size < 1):
            raise ValueError("COPU queues need at least one entry")
        if self.cht_size < 1:
            raise ValueError("CHT needs at least one entry")

    @property
    def cht_entry_bits(self) -> int:
        """Bits per CHT entry: one when S = 0, two counters otherwise."""
        if self.s == 0:
            return 1
        return 2 * self.counter_bits

    def with_queue_sizes(self, qcoll: int, qnoncoll: int) -> "AcceleratorConfig":
        """Copy with different queue sizes (Fig. 17 sweep)."""
        return replace(self, qcoll_size=qcoll, qnoncoll_size=qnoncoll)

    def with_strategy(self, s: float | None = None, u: float | None = None) -> "AcceleratorConfig":
        """Copy with a different prediction strategy (Fig. 18 sweeps)."""
        cfg = self
        if s is not None:
            cfg = replace(cfg, s=s)
        if u is not None:
            cfg = replace(cfg, u=u)
        return cfg


def copu_config(num_cdus: int, cht_size: int = 4096, s: float = 0.0, u: float = 0.0) -> AcceleratorConfig:
    """The paper's COPU.x evaluation points (Sec. VI-B2 defaults).

    Sec. VI-B2 uses a 4096 x 1-bit CHT (S = 0, U = 0) with QNONCOLL = 56
    and QCOLL = 8.
    """
    return AcceleratorConfig(
        name=f"copu.{num_cdus}",
        num_cdus=num_cdus,
        use_copu=True,
        cht_size=cht_size,
        s=s,
        u=u,
    )


def baseline_config(num_cdus: int) -> AcceleratorConfig:
    """The baseline.x accelerator: identical CDUs, no prediction."""
    return AcceleratorConfig(name=f"baseline.{num_cdus}", num_cdus=num_cdus, use_copu=False)
