"""Adaptive prediction strategy — the paper's stated future work.

Section VI-A1: "there is scope to tune the value of S by using a heuristic
to estimate environmental obstacle density (e.g., the number of voxels or
the number of nodes in octree); we leave this to future work."

This module implements that extension:

* :class:`ObstacleDensityEstimator` approximates a scene's clutter level
  from the fraction of occupied workspace voxels — exactly the "number of
  voxels" heuristic the paper suggests. Mapping thresholds follow the
  calibrated low/medium/high scene families of Sec. V.
* :class:`AdaptiveCHTPredictor` picks the strategy weight ``S`` from the
  estimated density using the paper's own Fig. 13 findings: aggressive
  (S = 0) in sparse scenes where recall matters, balanced (S = 1/2) in
  medium clutter, conservative (S = 2) in dense scenes where precision
  matters.
"""

from __future__ import annotations

import numpy as np

from numpy.typing import ArrayLike

from ..env.scene import Scene
from ..env.voxels import voxelize_scene
from ..geometry.aabb import AABB
from .cht import CollisionHistoryTable
from .hashing import HashFunction
from .predictor import CHTPredictor, Predictor

__all__ = ["ObstacleDensityEstimator", "AdaptiveCHTPredictor", "STRATEGY_BY_DENSITY"]

#: Fig. 13's best strategy weight per clutter level.
STRATEGY_BY_DENSITY = {"low": 0.0, "medium": 0.5, "high": 2.0}


class ObstacleDensityEstimator:
    """Estimates a scene's clutter level from voxel occupancy.

    The estimator voxelizes the workspace once per scene (the same cheap
    occupancy summary a mapping pipeline already produces) and thresholds
    the occupied fraction into the paper's low/medium/high bands.
    """

    def __init__(
        self,
        bounds: AABB | None = None,
        resolution: float = 0.15,
        medium_threshold: float = 0.02,
        high_threshold: float = 0.06,
    ) -> None:
        if high_threshold <= medium_threshold:
            raise ValueError("thresholds must be ordered medium < high")
        self.bounds = bounds if bounds is not None else AABB(np.full(3, -1.0), np.full(3, 1.0))
        self.resolution = float(resolution)
        self.medium_threshold = float(medium_threshold)
        self.high_threshold = float(high_threshold)

    def occupied_fraction(self, scene: Scene) -> float:
        """Fraction of workspace voxels intersecting an obstacle."""
        grid = voxelize_scene(scene, self.bounds, self.resolution)
        total = int(np.prod(grid.shape))
        return grid.num_occupied / total if total else 0.0

    def classify(self, scene: Scene) -> str:
        """Map a scene to ``"low"``, ``"medium"`` or ``"high"`` clutter."""
        fraction = self.occupied_fraction(scene)
        if fraction >= self.high_threshold:
            return "high"
        if fraction >= self.medium_threshold:
            return "medium"
        return "low"


class AdaptiveCHTPredictor(Predictor):
    """A CHT predictor whose ``S`` follows the estimated obstacle density.

    Call :meth:`observe_environment` whenever a new environment
    measurement arrives (the same event that resets the CHT); the
    predictor re-estimates the density, selects ``S`` from
    :data:`STRATEGY_BY_DENSITY`, and clears its history.
    """

    def __init__(
        self,
        hash_function: HashFunction,
        table_size: int = 4096,
        estimator: ObstacleDensityEstimator | None = None,
        u: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.estimator = estimator if estimator is not None else ObstacleDensityEstimator()
        self.u = float(u)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.inner = CHTPredictor(
            hash_function,
            CollisionHistoryTable(size=table_size, s=0.5, u=u, rng=self._rng),
        )
        self.current_density = "medium"

    @property
    def s(self) -> float:
        """The currently selected strategy weight."""
        return self.inner.table.s

    def observe_environment(self, scene: Scene) -> str:
        """Re-tune ``S`` for a newly measured environment; resets history."""
        density = self.estimator.classify(scene)
        self.current_density = density
        table = self.inner.table
        self.inner.table = CollisionHistoryTable(
            size=table.size, s=STRATEGY_BY_DENSITY[density], u=self.u, rng=self._rng
        )
        return density

    def predict(self, key: ArrayLike) -> bool:
        return self.inner.predict(key)

    def observe(self, key: ArrayLike, collided: bool) -> None:
        self.inner.observe(key, collided)

    def reset(self) -> None:
        self.inner.reset()
