"""The Collision History Table (CHT) — Sec. III-D and IV.

Each CHT entry holds two saturating counters: ``COLL`` counts colliding CDQs
and ``NONCOLL`` collision-free CDQs observed under the same hash code since
the last environment measurement. Two parameters shape the predictor:

* **S** (aggressiveness): a query is predicted colliding when
  ``COLL > S * NONCOLL``. ``S = 0`` is the most aggressive strategy and
  degenerates the entry to a single bit (``NONCOLL`` is never consulted).
* **U** (update frequency): every colliding CDQ updates the table, but only
  a random fraction ``U`` of collision-free CDQs do, reducing table traffic.

The hardware COPU implements the comparison as ``COLL > (NONCOLL >> x)``;
:func:`shift_for_strategy` maps an ``S`` value onto that shift amount.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CollisionHistoryTable", "shift_for_strategy"]

#: 4-bit saturating counters, as stated in Sec. IV.
COUNTER_BITS = 4
COUNTER_MAX = (1 << COUNTER_BITS) - 1


def shift_for_strategy(s: float) -> int | None:
    """Map a strategy weight ``S`` to the hardware right-shift amount ``x``.

    ``S = 1`` → shift 0, ``S = 1/2`` → shift 1, ``S = 1/4`` → shift 2, etc.
    ``S = 0`` returns None (the NONCOLL counter is ignored entirely).
    ``S = 2`` is realised as a left shift of the COLL side in hardware; we
    return -1 to signal it.
    """
    if s == 0:
        return None
    if s >= 2:
        return -1
    shift = int(round(np.log2(1.0 / s)))
    return max(shift, 0)


#: Sentinel shift meaning "S = 0: predict from COLL alone" (distinct from
#: ``None``, which :func:`_exact_shift` uses for "no exact shift exists").
_SHIFT_IGNORE_NONCOLL = -2


def _exact_shift(s: float) -> int | None:
    """The hardware shift for ``S`` when the shift comparison is *exact*.

    ``COLL > NONCOLL >> x`` agrees with the float ``COLL > S * NONCOLL``
    for every integer counter state precisely when ``S`` is a power of two
    realisable by the COPU's shifter: ``S ∈ {0} ∪ {2^-x} ∪ {2}``. For
    those values this returns :func:`shift_for_strategy`'s amount (with
    ``S = 0`` mapped to :data:`_SHIFT_IGNORE_NONCOLL`); any other ``S``
    returns None and the predictor keeps the float comparison.
    """
    if s == 0.0:
        return _SHIFT_IGNORE_NONCOLL
    if s == 2.0:
        return -1
    if 0.0 < s <= 1.0:
        exponent = np.log2(1.0 / s)
        if exponent == np.floor(exponent):
            return int(exponent)
    return None


class CollisionHistoryTable:
    """A direct-mapped table of (COLL, NONCOLL) saturating counter pairs.

    Parameters
    ----------
    size:
        Number of entries. The paper uses 4096 for arm planning, 1024 for
        2D planning (Sec. V).
    s:
        Prediction strategy weight (Sec. III-D). ``0 <= s <= 2`` typically.
    u:
        Update frequency for collision-free CDQs in ``[0, 1]``.
    rng:
        Source of randomness for the probabilistic NONCOLL updates. When
        omitted, a fixed-seed generator is used (deterministic replays).
    counter_bits:
        Saturating-counter width; 4 in the paper's COPU, 1-bit tables are
        modelled with ``s = 0``.
    """

    def __init__(
        self,
        size: int = 4096,
        s: float = 1.0,
        u: float = 1.0,
        rng: np.random.Generator | None = None,
        counter_bits: int = COUNTER_BITS,
    ) -> None:
        if size < 1:
            raise ValueError("table size must be positive")
        if s < 0:
            raise ValueError("S must be non-negative")
        if not 0.0 <= u <= 1.0:
            raise ValueError("U must be in [0, 1]")
        if counter_bits < 1:
            raise ValueError("counters need at least one bit")
        self.size = int(size)
        self.s = float(s)
        self.u = float(u)
        self.counter_max = (1 << counter_bits) - 1
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.coll = np.zeros(self.size, dtype=np.int32)
        self.noncoll = np.zeros(self.size, dtype=np.int32)
        #: Hardware shift amount when ``S`` is an exact power of two (the
        #: COPU's ``COLL > NONCOLL >> x`` comparator); None keeps the
        #: float comparison for non-power-of-two strategy sweeps.
        self.shift = _exact_shift(self.s)
        # Traffic statistics used by the energy model and the U-sweep bench.
        self.reads = 0
        self.writes = 0
        self.skipped_updates = 0

    def _index(self, code: int) -> int:
        """Fold an arbitrary-width hash code onto the table size."""
        return int(code) % self.size

    def _compare(
        self,
        coll: "np.ndarray | np.signedinteger",
        noncoll: "np.ndarray | np.signedinteger",
    ) -> "np.ndarray | np.bool_":
        """The prediction comparison, elementwise over counter arrays.

        Uses the hardware-exact integer shift datapath whenever ``S`` is a
        power of two the COPU shifter can realise (Sec. IV: the comparison
        is ``COLL > NONCOLL >> x``; ``S = 2`` left-shifts the NONCOLL side
        and ``S = 0`` ignores NONCOLL entirely). Integer and float paths
        agree for every reachable counter state when the shift is exact —
        pinned by a test sweeping all (COLL, NONCOLL) pairs.
        """
        if self.shift is None:
            return coll > self.s * noncoll
        if self.shift == _SHIFT_IGNORE_NONCOLL:
            return coll > 0
        if self.shift == -1:
            return coll > (noncoll << 1)
        return coll > (noncoll >> self.shift)

    def predict(self, code: int) -> bool:
        """Return True when the entry predicts a collision (COLL > S*NONCOLL)."""
        idx = self._index(code)
        self.reads += 1
        return bool(self._compare(self.coll[idx], self.noncoll[idx]))

    def entry(self, code: int) -> tuple[int, int]:
        """Raw (COLL, NONCOLL) counter values for a hash code (no stats)."""
        idx = self._index(code)
        return int(self.coll[idx]), int(self.noncoll[idx])

    def _indices(self, codes: "np.ndarray") -> np.ndarray:
        """Vectorized :meth:`_index`: fold a code array onto the table."""
        return np.asarray(codes, dtype=np.int64) % self.size

    def probe_many(self, codes: "np.ndarray") -> np.ndarray:
        """Stats-free batched prediction: (N,) codes -> (N,) bool verdicts.

        One fancy-indexed gather of both counter columns plus one
        vectorized comparison — the software image of the COPU reading N
        parallel CHT banks in a single cycle. Does *not* touch the read
        counter: callers that must replicate the scalar loop's traffic
        statistics exactly (the predict-gated batch kernel, which may stop
        predicting mid-motion on an early exit) account reads themselves.
        Use :meth:`predict_many` for the stats-tracking form.
        """
        idx = self._indices(codes)
        return np.asarray(self._compare(self.coll[idx], self.noncoll[idx]), dtype=bool)

    def predict_many(self, codes: "np.ndarray") -> np.ndarray:
        """Batched :meth:`predict`: one table read per code, exact stats.

        Equivalent to ``[table.predict(c) for c in codes]`` — same
        verdicts, same final read counter — evaluated as one gather and
        one compare.
        """
        codes = np.asarray(codes, dtype=np.int64)
        self.reads += int(codes.shape[0])
        return self.probe_many(codes)

    def update_many(self, codes: "np.ndarray", outcomes: "np.ndarray") -> np.ndarray:
        """Batched :meth:`update`: sequential-equivalent outcome recording.

        Replays exactly what the scalar update loop would do, as array
        ops. Three properties make the equivalence bit-exact:

        * **U-sampling order**: the scalar loop draws one uniform per
          collision-free outcome, in stream order. ``rng.random(n_free)``
          consumes the identical generator stream, so accept/skip
          decisions (and every later draw from the shared RNG) match the
          sequential run draw for draw.
        * **Saturation under duplicates**: per-entry increments accumulate
          with ``np.bincount`` and clip at ``counter_max`` once —
          identical to k successive saturating ``+1`` writes because the
          increment is monotone.
        * **Stats**: writes and skipped-update counters advance by the
          same totals as the scalar loop.

        Returns the per-outcome "table was written" mask (the batched
        analogue of :meth:`update`'s return value).
        """
        codes = np.asarray(codes, dtype=np.int64)
        outcomes = np.asarray(outcomes, dtype=bool)
        if codes.shape != outcomes.shape or codes.ndim != 1:
            raise ValueError("codes and outcomes must be equal-length 1-D arrays")
        written = np.ones(codes.shape[0], dtype=bool)
        if self.u < 1.0:
            free = ~outcomes
            draws = self.rng.random(int(free.sum()))
            written[free] = draws < self.u
            self.skipped_updates += int(free.sum() - written[free].sum())
        idx = self._indices(codes)
        coll_counts = np.bincount(idx[outcomes], minlength=self.size)
        noncoll_counts = np.bincount(idx[written & ~outcomes], minlength=self.size)
        self.merge_counts(coll_counts, noncoll_counts)
        self.writes += int(written.sum())
        return written

    def merge_counts(self, coll_counts: "np.ndarray", noncoll_counts: "np.ndarray") -> None:
        """Saturating commit of per-entry increment counts (the merge primitive).

        This is :meth:`update_many`'s commit step exposed on its own: add a
        whole (size,) vector of raw increments to each counter column and
        clip at ``counter_max`` once. Because the increments are monotone,
        ``min(base + a + b, max)`` equals any interleaving of saturating
        single steps — merging delta batches is associative and commutative
        up to saturation, which is what makes this safe as the
        *cross-process* merge primitive of :mod:`repro.sharedcht` (shared
        counter banks accept workers' batched deltas in any order).

        Operates in place so subclasses backed by shared-memory views keep
        their backing buffer. Traffic statistics are untouched; callers
        account writes themselves.
        """
        np.minimum(self.coll + coll_counts, self.counter_max, out=self.coll, casting="unsafe")
        np.minimum(
            self.noncoll + noncoll_counts, self.counter_max, out=self.noncoll, casting="unsafe"
        )

    def update(self, code: int, collided: bool) -> bool:
        """Record a CDQ outcome. Returns True when the table was written.

        Colliding outcomes always update (Sec. III-D observes this is
        important for precision and recall); collision-free outcomes update
        with probability ``U``.
        """
        if not collided and self.u < 1.0 and self.rng.random() >= self.u:
            self.skipped_updates += 1
            return False
        idx = self._index(code)
        if collided:
            self.coll[idx] = min(self.coll[idx] + 1, self.counter_max)
        else:
            self.noncoll[idx] = min(self.noncoll[idx] + 1, self.counter_max)
        self.writes += 1
        return True

    def reset(self) -> None:
        """Clear all counters (new motion-planning query / new environment).

        Sec. IV: "All entries ... are reset to zero after each motion
        planning query, as obstacle positions might change."
        """
        self.coll.fill(0)
        self.noncoll.fill(0)

    def occupancy(self) -> float:
        """Fraction of entries with any recorded history (density metric)."""
        touched = np.count_nonzero((self.coll + self.noncoll) > 0)
        return touched / float(self.size)

    def storage_bits(self) -> int:
        """Total SRAM bits of the table (for the area/energy model)."""
        if self.s == 0:
            # S = 0 needs only the one-bit "seen a collision" flag per entry.
            return self.size
        per_entry = 2 * int(np.ceil(np.log2(self.counter_max + 1)))
        return self.size * per_entry
