"""The Collision History Table (CHT) — Sec. III-D and IV.

Each CHT entry holds two saturating counters: ``COLL`` counts colliding CDQs
and ``NONCOLL`` collision-free CDQs observed under the same hash code since
the last environment measurement. Two parameters shape the predictor:

* **S** (aggressiveness): a query is predicted colliding when
  ``COLL > S * NONCOLL``. ``S = 0`` is the most aggressive strategy and
  degenerates the entry to a single bit (``NONCOLL`` is never consulted).
* **U** (update frequency): every colliding CDQ updates the table, but only
  a random fraction ``U`` of collision-free CDQs do, reducing table traffic.

The hardware COPU implements the comparison as ``COLL > (NONCOLL >> x)``;
:func:`shift_for_strategy` maps an ``S`` value onto that shift amount.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CollisionHistoryTable", "shift_for_strategy"]

#: 4-bit saturating counters, as stated in Sec. IV.
COUNTER_BITS = 4
COUNTER_MAX = (1 << COUNTER_BITS) - 1


def shift_for_strategy(s: float) -> int | None:
    """Map a strategy weight ``S`` to the hardware right-shift amount ``x``.

    ``S = 1`` → shift 0, ``S = 1/2`` → shift 1, ``S = 1/4`` → shift 2, etc.
    ``S = 0`` returns None (the NONCOLL counter is ignored entirely).
    ``S = 2`` is realised as a left shift of the COLL side in hardware; we
    return -1 to signal it.
    """
    if s == 0:
        return None
    if s >= 2:
        return -1
    shift = int(round(np.log2(1.0 / s)))
    return max(shift, 0)


class CollisionHistoryTable:
    """A direct-mapped table of (COLL, NONCOLL) saturating counter pairs.

    Parameters
    ----------
    size:
        Number of entries. The paper uses 4096 for arm planning, 1024 for
        2D planning (Sec. V).
    s:
        Prediction strategy weight (Sec. III-D). ``0 <= s <= 2`` typically.
    u:
        Update frequency for collision-free CDQs in ``[0, 1]``.
    rng:
        Source of randomness for the probabilistic NONCOLL updates. When
        omitted, a fixed-seed generator is used (deterministic replays).
    counter_bits:
        Saturating-counter width; 4 in the paper's COPU, 1-bit tables are
        modelled with ``s = 0``.
    """

    def __init__(
        self,
        size: int = 4096,
        s: float = 1.0,
        u: float = 1.0,
        rng: np.random.Generator | None = None,
        counter_bits: int = COUNTER_BITS,
    ) -> None:
        if size < 1:
            raise ValueError("table size must be positive")
        if s < 0:
            raise ValueError("S must be non-negative")
        if not 0.0 <= u <= 1.0:
            raise ValueError("U must be in [0, 1]")
        if counter_bits < 1:
            raise ValueError("counters need at least one bit")
        self.size = int(size)
        self.s = float(s)
        self.u = float(u)
        self.counter_max = (1 << counter_bits) - 1
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.coll = np.zeros(self.size, dtype=np.int32)
        self.noncoll = np.zeros(self.size, dtype=np.int32)
        # Traffic statistics used by the energy model and the U-sweep bench.
        self.reads = 0
        self.writes = 0
        self.skipped_updates = 0

    def _index(self, code: int) -> int:
        """Fold an arbitrary-width hash code onto the table size."""
        return int(code) % self.size

    def predict(self, code: int) -> bool:
        """Return True when the entry predicts a collision (COLL > S*NONCOLL)."""
        idx = self._index(code)
        self.reads += 1
        return bool(self.coll[idx] > self.s * self.noncoll[idx])

    def entry(self, code: int) -> tuple[int, int]:
        """Raw (COLL, NONCOLL) counter values for a hash code (no stats)."""
        idx = self._index(code)
        return int(self.coll[idx]), int(self.noncoll[idx])

    def update(self, code: int, collided: bool) -> bool:
        """Record a CDQ outcome. Returns True when the table was written.

        Colliding outcomes always update (Sec. III-D observes this is
        important for precision and recall); collision-free outcomes update
        with probability ``U``.
        """
        if not collided and self.u < 1.0 and self.rng.random() >= self.u:
            self.skipped_updates += 1
            return False
        idx = self._index(code)
        if collided:
            self.coll[idx] = min(self.coll[idx] + 1, self.counter_max)
        else:
            self.noncoll[idx] = min(self.noncoll[idx] + 1, self.counter_max)
        self.writes += 1
        return True

    def reset(self) -> None:
        """Clear all counters (new motion-planning query / new environment).

        Sec. IV: "All entries ... are reset to zero after each motion
        planning query, as obstacle positions might change."
        """
        self.coll.fill(0)
        self.noncoll.fill(0)

    def occupancy(self) -> float:
        """Fraction of entries with any recorded history (density metric)."""
        touched = np.count_nonzero((self.coll + self.noncoll) > 0)
        return touched / float(self.size)

    def storage_bits(self) -> int:
        """Total SRAM bits of the table (for the area/energy model)."""
        if self.s == 0:
            # S = 0 needs only the one-bit "seen a collision" flag per entry.
            return self.size
        per_entry = 2 * int(np.ceil(np.log2(self.counter_max + 1)))
        return self.size * per_entry
