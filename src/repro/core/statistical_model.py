"""Statistical model of computation reduction from prediction (Fig. 13).

Section VI-A1: "We also report approximate computation reductions achieved
by collision prediction using a statistical model. This statistical model
considers the baseline collision probability, precision, and recall and
provides the potential decrease in the number of CDQs executed for collision
check of a motion consisting of 80 CDQs."

Model: a motion comprises ``N`` i.i.d. CDQs, each colliding with probability
``p``. Collision detection stops at the first colliding CDQ (the OR early
exit, Sec. III-A). A predictor with precision ``pi`` and recall ``r`` flags
CDQs; flagged CDQs execute first. The model computes the expected number of
executed CDQs with and without prediction and the resulting reduction.

A Monte-Carlo estimator with identical assumptions is provided for
validating the closed-form expectation in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReductionEstimate", "expected_cdqs_without_prediction", "estimate_reduction", "simulate_reduction"]

#: Motion length used by the paper's Fig. 13 model.
PAPER_MOTION_CDQS = 80


def expected_cdqs_without_prediction(num_cdqs: int, collision_prob: float) -> float:
    """Expected CDQs executed by an unordered scan with early exit.

    With per-CDQ collision probability ``p``, the scan stops at the first
    hit: ``E = sum_{k=0}^{N-1} (1-p)^k``.
    """
    if num_cdqs < 1:
        raise ValueError("a motion needs at least one CDQ")
    if not 0.0 <= collision_prob <= 1.0:
        raise ValueError("collision probability must be in [0, 1]")
    if collision_prob == 0.0:
        return float(num_cdqs)
    miss = 1.0 - collision_prob
    return (1.0 - miss**num_cdqs) / collision_prob


def false_positive_rate(collision_prob: float, precision: float, recall: float) -> float:
    """Per-free-CDQ flag probability implied by (p, precision, recall)."""
    if precision <= 0.0:
        return 1.0
    if collision_prob >= 1.0:
        return 0.0
    rate = collision_prob * recall * (1.0 - precision) / (precision * (1.0 - collision_prob))
    return float(min(rate, 1.0))


@dataclass(frozen=True)
class ReductionEstimate:
    """Output of the statistical model."""

    baseline_cdqs: float
    predicted_cdqs: float

    @property
    def reduction(self) -> float:
        """Fractional decrease in executed CDQs (positive = fewer CDQs)."""
        if self.baseline_cdqs == 0.0:
            return 0.0
        return 1.0 - self.predicted_cdqs / self.baseline_cdqs


def estimate_reduction(
    collision_prob: float,
    precision: float,
    recall: float,
    num_cdqs: int = PAPER_MOTION_CDQS,
) -> ReductionEstimate:
    """Exact expected CDQ reduction for a motion of ``num_cdqs``.

    CDQs are i.i.d.; the predicted schedule scans flagged CDQs first (in
    index order), then unflagged ones. A CDQ is executed iff no colliding
    CDQ precedes it in that scan order, so the expectation is a sum of
    per-item execution probabilities. With per-item probabilities
    ``a`` = colliding-and-flagged and ``b`` = colliding-and-unflagged:

    * flagged item at index i executes with probability
      ``q_f * (1-a)^(i-1)`` (no earlier colliding-flagged item);
    * unflagged item at index i executes with probability
      ``(1-q_f) * (1-p)^(i-1) * (1-a)^(N-i)`` (no earlier colliding item
      of either kind, and no colliding-flagged item anywhere after it).
    """
    if not 0.0 <= precision <= 1.0 or not 0.0 <= recall <= 1.0:
        raise ValueError("precision and recall must be in [0, 1]")
    p = collision_prob
    baseline = expected_cdqs_without_prediction(num_cdqs, p)
    fpr = false_positive_rate(p, precision, recall)
    a = p * recall
    flag_prob = a + (1.0 - p) * fpr
    expected = 0.0
    for i in range(1, num_cdqs + 1):
        expected += flag_prob * (1.0 - a) ** (i - 1)
        expected += (1.0 - flag_prob) * (1.0 - p) ** (i - 1) * (1.0 - a) ** (num_cdqs - i)
    return ReductionEstimate(baseline_cdqs=baseline, predicted_cdqs=expected)


def simulate_reduction(
    collision_prob: float,
    precision: float,
    recall: float,
    num_cdqs: int = PAPER_MOTION_CDQS,
    num_motions: int = 2000,
    rng: np.random.Generator | None = None,
) -> ReductionEstimate:
    """Monte-Carlo estimate under the same assumptions as the closed form."""
    rng = rng if rng is not None else np.random.default_rng(0)
    fpr = false_positive_rate(collision_prob, precision, recall)
    baseline_total = 0.0
    predicted_total = 0.0
    for _ in range(num_motions):
        colliding = rng.random(num_cdqs) < collision_prob
        flagged = np.where(
            colliding, rng.random(num_cdqs) < recall, rng.random(num_cdqs) < fpr
        )
        # Baseline: scan in given order until first hit.
        hits = np.flatnonzero(colliding)
        baseline_total += (hits[0] + 1) if hits.size else num_cdqs
        # Predicted: flagged first (stable order), then the rest.
        order = np.concatenate([np.flatnonzero(flagged), np.flatnonzero(~flagged)])
        ordered_hits = np.flatnonzero(colliding[order])
        predicted_total += (ordered_hits[0] + 1) if ordered_hits.size else num_cdqs
    return ReductionEstimate(
        baseline_cdqs=baseline_total / num_motions,
        predicted_cdqs=predicted_total / num_motions,
    )
