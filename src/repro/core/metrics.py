"""Prediction-quality metrics: precision, recall, and confusion tracking.

The paper's definitions (Sec. III-B): *precision* is the fraction of
poses/queries predicted colliding that actually collide; *recall* is the
fraction of actually colliding poses/queries that were predicted colliding.

This module also hosts :class:`LatencyHistogram`, the streaming histogram
shared by the serving telemetry layer and the benchmarks: collision checks
arrive as latency-sensitive streams (Sec. III-E), so tail percentiles —
not means — are the quantity every serving experiment reports.
:class:`ResilienceCounters` is the matching counter block for the fault
tolerance layer (:mod:`repro.resilience`): retries, breaker trips,
degraded verdicts, and restarts, aggregated the same way everywhere a
supervised component runs.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from numpy.typing import ArrayLike

if TYPE_CHECKING:
    from .predictor import Predictor

__all__ = [
    "ConfusionCounts",
    "PredictionEvaluator",
    "LatencyHistogram",
    "RESILIENCE_COUNTER_NAMES",
    "ResilienceCounters",
]

#: Counters registered up front so resilience snapshots always carry every
#: key, even for components that never failed.
RESILIENCE_COUNTER_NAMES = (
    "shard_retries",
    "shard_timeouts",
    "pool_restarts",
    "worker_errors",
    "worker_restarts",
    "breaker_trips",
    "breaker_probes",
    "backend_failures",
    "degraded_verdicts",
    "faults_injected",
    "shutdown_drained",
    "errors_recorded",
    # Shared-CHT durability (repro.sharedcht.durability): epoch-fence
    # recoveries, checksum failures, and the quarantine/rebuild/restore
    # lifecycle of serving banks.
    "torn_commits_rolled_back",
    "segment_corruptions",
    "banks_quarantined",
    "banks_rebuilt",
    "banks_restored",
    "snapshot_failures",
)


class ResilienceCounters:
    """Monotonic counters for the fault-tolerance layer.

    One instance per supervised component (a sharded run, a serving
    telemetry block); ``merge`` folds per-component counters into a
    run-level view. Unregistered names are created on first use so the
    fault-injection harness can attach ad-hoc counters.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {name: 0 for name in RESILIENCE_COUNTER_NAMES}

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter (created on first use if unregistered)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def record_error(self, site: str, error: BaseException) -> None:
        """Keep a handled-and-swallowed exception's identity observable.

        The contract broad ``except Exception`` handlers must meet
        (reprolint rule C001): increments the aggregate
        ``errors_recorded`` counter plus an ad-hoc
        ``error:<site>:<ExceptionType>`` counter, so snapshots show not
        just *that* errors were absorbed but *where* and *what kind*.
        """
        self.count("errors_recorded")
        self.count(f"error:{site}:{type(error).__name__}")

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    def merge(self, other: "ResilienceCounters") -> None:
        """Accumulate another counter block into this one."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def snapshot(self) -> dict:
        """Plain-dict view of every counter."""
        return dict(self.counters)


class LatencyHistogram:
    """A streaming histogram over fixed log-spaced buckets.

    Bucket upper edges are ``min_value * 10**(i / buckets_per_decade)``, so
    relative resolution is constant across the whole range — the right
    shape for latencies spanning microseconds to seconds. Recording is O(1)
    and memory is fixed, so one instance can absorb millions of samples.

    ``percentile`` returns the upper edge of the bucket containing the
    requested rank (clamped to the observed min/max), i.e. a conservative
    estimate within one bucket width (~26% relative at the default
    resolution). Two histograms with identical bucket layouts can be
    ``merge``-d, which is how per-worker telemetry is aggregated.
    """

    def __init__(
        self,
        min_value: float = 1e-3,
        max_value: float = 1e5,
        buckets_per_decade: int = 10,
    ) -> None:
        if min_value <= 0.0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ValueError("need at least one bucket per decade")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(max_value / min_value)
        #: Upper bucket edges; one extra bucket beyond catches overflow.
        self.edges = [
            min_value * 10.0 ** (i / buckets_per_decade)
            for i in range(int(math.ceil(decades * buckets_per_decade)) + 1)
        ]
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        if value > self.edges[-1]:
            return len(self.edges)
        index = int(math.log10(value / self.min_value) * self.buckets_per_decade)
        # Float rounding can land one bucket low/high; nudge to the edge.
        while value > self.edges[index]:
            index += 1
        while index > 0 and value <= self.edges[index - 1]:
            index -= 1
        return index

    def record(self, value: float) -> None:
        """Add one sample (must be finite and non-negative)."""
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(f"latency samples must be finite and >= 0, got {value!r}")
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Exact sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper-edge estimate of the ``p``-th percentile, ``0 < p <= 100``."""
        if not 0.0 < p <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100.0)
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if index >= len(self.edges):
                    return self.max
                return min(max(self.edges[index], self.min), self.max)
        return self.max

    def merge(self, other: "LatencyHistogram") -> None:
        """Accumulate another histogram with the identical bucket layout."""
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different bucket layouts")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> dict:
        """Summary dict: count, mean, min/max, and p50/p95/p99."""
        if self.count == 0:
            return {
                "count": 0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


@dataclass
class ConfusionCounts:
    """A binary confusion matrix over CDQ predictions."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    @property
    def total(self) -> int:
        """Total number of scored predictions."""
        return self.true_positive + self.false_positive + self.true_negative + self.false_negative

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0.0 when nothing was predicted positive."""
        predicted = self.true_positive + self.false_positive
        return self.true_positive / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0.0 when nothing was actually positive."""
        actual = self.true_positive + self.false_negative
        return self.true_positive / actual if actual else 0.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total; 0.0 when empty."""
        return (self.true_positive + self.true_negative) / self.total if self.total else 0.0

    @property
    def base_rate(self) -> float:
        """Fraction of scored queries that actually collided."""
        actual = self.true_positive + self.false_negative
        return actual / self.total if self.total else 0.0

    def record(self, predicted: bool, actual: bool) -> None:
        """Score one prediction against its ground truth."""
        if predicted and actual:
            self.true_positive += 1
        elif predicted and not actual:
            self.false_positive += 1
        elif not predicted and actual:
            self.false_negative += 1
        else:
            self.true_negative += 1

    def merged(self, other: "ConfusionCounts") -> "ConfusionCounts":
        """Return the element-wise sum of two confusion matrices."""
        return ConfusionCounts(
            true_positive=self.true_positive + other.true_positive,
            false_positive=self.false_positive + other.false_positive,
            true_negative=self.true_negative + other.true_negative,
            false_negative=self.false_negative + other.false_negative,
        )


class PredictionEvaluator:
    """Drives a predictor over labelled queries and scores it.

    Mirrors the paper's design-space methodology (Sec. V): iterate keys with
    known ground-truth outcomes, score ``predict`` before feeding the truth
    back through ``observe`` — i.e. the predictor is always evaluated on
    queries it has not yet been updated with.
    """

    def __init__(self, predictor: "Predictor") -> None:
        self.predictor = predictor
        self.counts = ConfusionCounts()

    def run(self, labelled_keys: Iterable[tuple[ArrayLike, bool]]) -> ConfusionCounts:
        """Score the predictor over an iterable of (key, collided) pairs."""
        for key, collided in labelled_keys:
            predicted = self.predictor.predict(key)
            self.counts.record(predicted, bool(collided))
            self.predictor.observe(key, bool(collided))
        return self.counts
