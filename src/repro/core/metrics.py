"""Prediction-quality metrics: precision, recall, and confusion tracking.

The paper's definitions (Sec. III-B): *precision* is the fraction of
poses/queries predicted colliding that actually collide; *recall* is the
fraction of actually colliding poses/queries that were predicted colliding.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConfusionCounts", "PredictionEvaluator"]


@dataclass
class ConfusionCounts:
    """A binary confusion matrix over CDQ predictions."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    @property
    def total(self) -> int:
        """Total number of scored predictions."""
        return self.true_positive + self.false_positive + self.true_negative + self.false_negative

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0.0 when nothing was predicted positive."""
        predicted = self.true_positive + self.false_positive
        return self.true_positive / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0.0 when nothing was actually positive."""
        actual = self.true_positive + self.false_negative
        return self.true_positive / actual if actual else 0.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total; 0.0 when empty."""
        return (self.true_positive + self.true_negative) / self.total if self.total else 0.0

    @property
    def base_rate(self) -> float:
        """Fraction of scored queries that actually collided."""
        actual = self.true_positive + self.false_negative
        return actual / self.total if self.total else 0.0

    def record(self, predicted: bool, actual: bool) -> None:
        """Score one prediction against its ground truth."""
        if predicted and actual:
            self.true_positive += 1
        elif predicted and not actual:
            self.false_positive += 1
        elif not predicted and actual:
            self.false_negative += 1
        else:
            self.true_negative += 1

    def merged(self, other: "ConfusionCounts") -> "ConfusionCounts":
        """Return the element-wise sum of two confusion matrices."""
        return ConfusionCounts(
            true_positive=self.true_positive + other.true_positive,
            false_positive=self.false_positive + other.false_positive,
            true_negative=self.true_negative + other.true_negative,
            false_negative=self.false_negative + other.false_negative,
        )


class PredictionEvaluator:
    """Drives a predictor over labelled queries and scores it.

    Mirrors the paper's design-space methodology (Sec. V): iterate keys with
    known ground-truth outcomes, score ``predict`` before feeding the truth
    back through ``observe`` — i.e. the predictor is always evaluated on
    queries it has not yet been updated with.
    """

    def __init__(self, predictor):
        self.predictor = predictor
        self.counts = ConfusionCounts()

    def run(self, labelled_keys) -> ConfusionCounts:
        """Score the predictor over an iterable of (key, collided) pairs."""
        for key, collided in labelled_keys:
            predicted = self.predictor.predict(key)
            self.counts.record(predicted, bool(collided))
            self.predictor.observe(key, bool(collided))
        return self.counts
