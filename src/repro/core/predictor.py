"""Collision predictors.

The predictor protocol has two operations mirroring the COPU datapath:
``predict(key)`` guesses whether a CDQ with that key will collide, and
``observe(key, outcome)`` feeds the executed CDQ's result back. Keys are
whatever the installed hash function consumes (link centers for COORD,
pose vectors for the POSE family).

Besides the CHT-backed predictor this module provides the reference
predictors used by the paper's studies: the **Oracle** (perfect prediction,
used by the limit studies of Sec. III-A), a **random** predictor matching
the base collision probability (the precision baseline of Fig. 9), and a
**never-collides** predictor (equivalent to no prediction).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from numpy.typing import ArrayLike

from .cht import CollisionHistoryTable
from .hashing import HashFunction

__all__ = [
    "Predictor",
    "CHTPredictor",
    "OraclePredictor",
    "RandomPredictor",
    "NeverPredictor",
    "AlwaysPredictor",
]


class Predictor(ABC):
    """Common interface for all collision predictors."""

    @abstractmethod
    def predict(self, key: ArrayLike) -> bool:
        """Return True when a CDQ with this key is predicted to collide."""

    def observe(self, key: ArrayLike, collided: bool) -> None:
        """Feed back the executed CDQ's real outcome (default: ignore)."""

    def predict_many(self, keys: ArrayLike) -> np.ndarray:
        """Batched :meth:`predict`: (N, key_dim) keys -> (N,) bool verdicts.

        Must be equivalent to calling :meth:`predict` per row (including
        any internal statistics or RNG consumption). The default does
        exactly that; stateful predictors with a vectorizable datapath
        override it.
        """
        keys = np.asarray(keys, dtype=float)
        return np.fromiter(
            (self.predict(key) for key in keys), dtype=bool, count=keys.shape[0]
        )

    def observe_many(self, keys: ArrayLike, outcomes: ArrayLike) -> None:
        """Batched :meth:`observe`, row-parallel to :meth:`predict_many`."""
        keys = np.asarray(keys, dtype=float)
        for key, outcome in zip(keys, np.asarray(outcomes, dtype=bool)):
            self.observe(key, bool(outcome))

    def reset(self) -> None:
        """Forget all history (new planning query / environment)."""


class CHTPredictor(Predictor):
    """The paper's predictor: a hash function over a Collision History Table.

    Instantiating with :class:`~repro.core.hashing.CoordHash` yields COORD;
    with the POSE-family hashes it yields the Sec. III-B ablations.
    """

    def __init__(self, hash_function: HashFunction, table: CollisionHistoryTable) -> None:
        self.hash_function = hash_function
        self.table = table

    @classmethod
    def create(
        cls,
        hash_function: HashFunction,
        table_size: int = 4096,
        s: float = 1.0,
        u: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> "CHTPredictor":
        """Convenience constructor wiring a fresh CHT to a hash function."""
        return cls(hash_function, CollisionHistoryTable(size=table_size, s=s, u=u, rng=rng))

    def predict(self, key: ArrayLike) -> bool:
        return self.table.predict(self.hash_function(key))

    def observe(self, key: ArrayLike, collided: bool) -> None:
        self.table.update(self.hash_function(key), collided)

    def predict_many(self, keys: ArrayLike) -> np.ndarray:
        """Batched COORD/POSE prediction: hash the batch, probe the table.

        The software image of the COPU's parallel hash generators feeding
        parallel CHT banks (Sec. IV): one vectorized
        :meth:`~repro.core.hashing.HashFunction.hash_many` pass plus one
        fancy-indexed :meth:`~repro.core.cht.CollisionHistoryTable.predict_many`.
        """
        return self.table.predict_many(self.hash_function.hash_many(keys))

    def observe_many(self, keys: ArrayLike, outcomes: ArrayLike) -> None:
        """Batched outcome feedback with sequential-equivalent semantics."""
        self.table.update_many(
            self.hash_function.hash_many(keys), np.asarray(outcomes, dtype=bool)
        )

    def reset(self) -> None:
        self.table.reset()


class OraclePredictor(Predictor):
    """Perfect predictor used by the Sec. III-A limit study.

    The oracle consults ground truth: the caller provides a function that
    computes the real CDQ outcome for a key's volume. (The limit-study
    harness passes a closure over the scene.)
    """

    def __init__(self, ground_truth: Callable[[object], bool]) -> None:
        self.ground_truth = ground_truth

    def predict(self, key: ArrayLike) -> bool:
        return bool(self.ground_truth(key))


class RandomPredictor(Predictor):
    """Predicts collision with a fixed probability (Fig. 9 baseline)."""

    def __init__(self, probability: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = float(probability)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def predict(self, key: ArrayLike) -> bool:
        return bool(self.rng.random() < self.probability)


class NeverPredictor(Predictor):
    """Never predicts collision: the no-prediction baseline."""

    def predict(self, key: ArrayLike) -> bool:
        return False


class AlwaysPredictor(Predictor):
    """Always predicts collision (degenerate upper bound on recall)."""

    def predict(self, key: ArrayLike) -> bool:
        return True
