"""Hash functions that index the Collision History Table.

Section III explores a family of hashing strategies whose goal is to group
*physically nearby* robot positions under the same hash code:

* C-space hashes (Sec. III-B), applied to the joint-value vector:
  - :class:`PoseHash` (**POSE**): quantize every DOF to ``k`` bits.
  - :class:`PosePartHash` (**POSE-part**): quantize only the first two DOFs
    (the ones nearest the base dominate physical locality, Fig. 8c).
  - :class:`PoseFoldHash` (**POSE+fold**): XOR-fold the POSE code down to a
    smaller table index.
  - :class:`EncodedPoseHash` (**ENPOSE**): quantize a learned latent-space
    representation of the pose (see :mod:`repro.core.encoders`).
* Physical-space hashes (Sec. III-C), applied per link:
  - :class:`CoordHash` (**COORD**, the paper's proposal): take the top ``k``
    MSBs of the 16-bit fixed-point Cartesian coordinates of a link's center
    (Fig. 10).
  - :class:`EncodedCoordHash` (**ENCOORD**): quantize a learned latent
    representation of the link center.

C-space hashes produce one code per *pose*; physical-space hashes produce
one code per *link volume*. Both expose the same callable protocol so the
prediction layer is agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from numpy.typing import ArrayLike

from ..geometry.fixedpoint import DEFAULT_WORKSPACE_FORMAT, FixedPointFormat

__all__ = [
    "HashFunction",
    "PoseHash",
    "PosePartHash",
    "PoseFoldHash",
    "CoordHash",
    "quantize_to_bits",
]

#: Widest hash code the vectorized int64 packing can represent. Wider
#: codes fall back to the per-element Python-int path, which is exact at
#: any width.
_MAX_VECTOR_CODE_BITS = 63


def quantize_to_bits(values: np.ndarray, lows: np.ndarray, highs: np.ndarray, k: int) -> np.ndarray:
    """Quantize each value of a vector into ``k`` bits over its own range.

    Values are clamped into the closed interval ``[low, high]`` per
    dimension and mapped to the integer cell index in ``[0, 2**k)``. The
    clamp is right-closed: a value exactly at (or beyond) ``high`` lands in
    the last cell, and ``±inf`` saturates to the corresponding edge cell —
    matching the hardware's saturating fixed-point encoder. NaN values are
    rejected (no hardware bin exists for them). This is the "take k MSBs of
    the fixed-point representation" operation of Sec. III-B.

    Broadcasts over leading axes: ``values`` may be ``(dof,)`` or
    ``(N, dof)`` against ``(dof,)`` bounds.
    """
    if k < 1:
        raise ValueError("need at least one bit per dimension")
    values = np.asarray(values, dtype=float)
    if np.isnan(values).any():
        raise ValueError("cannot quantize NaN values")
    span = highs - lows
    clamped = np.clip(values, lows, highs)
    cells = np.floor((clamped - lows) / span * (1 << k)).astype(np.int64)
    return np.clip(cells, 0, (1 << k) - 1)


def _pack_bits(cells: np.ndarray, k: int) -> int:
    """Concatenate per-dimension k-bit cells into one integer hash code."""
    code = 0
    for cell in cells:
        code = (code << k) | int(cell)
    return code


def _pack_bits_many(cells: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`_pack_bits`: (N, D) cell array -> (N,) int64 codes.

    The per-element shift-and-or loop becomes one shift-and-or per *column*
    — D operations over the whole batch instead of N * D Python ops.
    """
    cells = np.asarray(cells, dtype=np.int64)
    if cells.ndim != 2:
        raise ValueError(f"expected an (N, D) cell array, got shape {cells.shape}")
    if cells.shape[1] * k > _MAX_VECTOR_CODE_BITS:
        raise ValueError(
            f"{cells.shape[1]} x {k}-bit cells exceed the {_MAX_VECTOR_CODE_BITS}-bit "
            "vectorized code width"
        )
    codes = np.zeros(cells.shape[0], dtype=np.int64)
    for column in range(cells.shape[1]):
        codes = (codes << k) | cells[:, column]
    return codes


class HashFunction(ABC):
    """Maps a prediction key to an integer hash code in ``[0, table_size)``.

    ``key`` is whatever the strategy hashes: a C-space pose vector for the
    POSE family, a 3-vector link center for the COORD family.
    """

    @property
    @abstractmethod
    def code_bits(self) -> int:
        """Bit width of the produced hash code."""

    @abstractmethod
    def __call__(self, key: ArrayLike) -> int:
        """Hash a key to an integer in ``[0, 2**code_bits)``."""

    def hash_many(self, keys: ArrayLike) -> np.ndarray:
        """Hash a batch of keys: (N, key_dim) array -> (N,) int64 codes.

        Bit-identical to calling the instance on each row — the batched
        prediction layer depends on this equivalence (property-tested per
        family). Subclasses override with vectorized implementations; this
        default evaluates the scalar path row by row, so every
        :class:`HashFunction` (including learned hashes) supports the
        batched protocol.
        """
        keys = np.asarray(keys, dtype=float)
        if keys.ndim != 2:
            raise ValueError(f"expected an (N, key_dim) key array, got shape {keys.shape}")
        if self.code_bits > _MAX_VECTOR_CODE_BITS:
            raise ValueError(
                f"{self.code_bits}-bit codes exceed the {_MAX_VECTOR_CODE_BITS}-bit "
                "batched code width; use the scalar path"
            )
        return np.fromiter((self(key) for key in keys), dtype=np.int64, count=keys.shape[0])

    @property
    def table_size(self) -> int:
        """Number of CHT entries this hash function addresses."""
        return 1 << self.code_bits

    @property
    def vectorizable(self) -> bool:
        """True when :meth:`hash_many` can emit this hash's codes.

        Batched codes are int64 (the CHT's vectorized index fold requires
        it), so hashes wider than 63 bits are scalar-only; the predict-
        gated batch kernel checks this flag and falls back to the scalar
        engine for them.
        """
        return self.code_bits <= _MAX_VECTOR_CODE_BITS


class PoseHash(HashFunction):
    """POSE: quantize every DOF of the C-space pose to ``bits_per_dof`` bits."""

    def __init__(self, joint_limits: ArrayLike, bits_per_dof: int = 3) -> None:
        self.joint_limits = np.asarray(joint_limits, dtype=float)
        if self.joint_limits.ndim != 2 or self.joint_limits.shape[1] != 2:
            raise ValueError("joint_limits must be (dof, 2)")
        self.bits_per_dof = int(bits_per_dof)
        self.dof = self.joint_limits.shape[0]

    @property
    def code_bits(self) -> int:
        return self.bits_per_dof * self.dof

    def __call__(self, key: ArrayLike) -> int:
        q = np.asarray(key, dtype=float).reshape(-1)
        if q.shape[0] != self.dof:
            raise ValueError(f"expected a {self.dof}-DOF pose")
        cells = quantize_to_bits(
            q, self.joint_limits[:, 0], self.joint_limits[:, 1], self.bits_per_dof
        )
        return _pack_bits(cells, self.bits_per_dof)

    def hash_many(self, keys: ArrayLike) -> np.ndarray:
        """Vectorized POSE hashing: (N, dof) poses -> (N,) codes."""
        q = np.asarray(keys, dtype=float)
        if q.ndim != 2 or q.shape[1] != self.dof:
            raise ValueError(f"expected an (N, {self.dof}) pose array, got shape {q.shape}")
        if self.code_bits > _MAX_VECTOR_CODE_BITS:
            return super().hash_many(q)
        cells = quantize_to_bits(
            q, self.joint_limits[:, 0], self.joint_limits[:, 1], self.bits_per_dof
        )
        return _pack_bits_many(cells, self.bits_per_dof)


class PosePartHash(HashFunction):
    """POSE-part: hash only the first ``num_dofs`` joints (base-most DOFs).

    Fig. 8b/8c motivates this: DOFs close to the base dominate the physical
    space a pose occupies, so a partial hash preserves more physical
    locality per table entry than hashing every joint.
    """

    def __init__(self, joint_limits: ArrayLike, bits_per_dof: int = 4, num_dofs: int = 2) -> None:
        joint_limits = np.asarray(joint_limits, dtype=float)
        if num_dofs < 1 or num_dofs > joint_limits.shape[0]:
            raise ValueError("num_dofs out of range")
        self.inner = PoseHash(joint_limits[:num_dofs], bits_per_dof)
        self.num_dofs = num_dofs
        self.full_dof = joint_limits.shape[0]

    @property
    def code_bits(self) -> int:
        return self.inner.code_bits

    def __call__(self, key: ArrayLike) -> int:
        q = np.asarray(key, dtype=float).reshape(-1)
        if q.shape[0] != self.full_dof:
            raise ValueError(f"expected a {self.full_dof}-DOF pose")
        return self.inner(q[: self.num_dofs])

    def hash_many(self, keys: ArrayLike) -> np.ndarray:
        """Vectorized POSE-part hashing: slice the base DOFs, batch-hash."""
        q = np.asarray(keys, dtype=float)
        if q.ndim != 2 or q.shape[1] != self.full_dof:
            raise ValueError(f"expected an (N, {self.full_dof}) pose array, got shape {q.shape}")
        return self.inner.hash_many(q[:, : self.num_dofs])


class PoseFoldHash(HashFunction):
    """POSE+fold: XOR-fold the long POSE code down to ``folded_bits`` bits.

    Folding shrinks and densifies the table but destroys physical locality
    (distant poses alias), which the paper observes as higher recall at the
    cost of precision.
    """

    def __init__(
        self, joint_limits: ArrayLike, bits_per_dof: int = 3, folded_bits: int = 12
    ) -> None:
        self.inner = PoseHash(joint_limits, bits_per_dof)
        if folded_bits < 1 or folded_bits > self.inner.code_bits:
            raise ValueError("folded_bits must be in [1, full code width]")
        self.folded_bits = int(folded_bits)

    @property
    def code_bits(self) -> int:
        return self.folded_bits

    def __call__(self, key: ArrayLike) -> int:
        code = self.inner(key)
        folded = 0
        mask = (1 << self.folded_bits) - 1
        while code:
            folded ^= code & mask
            code >>= self.folded_bits
        return folded

    def hash_many(self, keys: ArrayLike) -> np.ndarray:
        """Vectorized POSE+fold hashing: batch-hash, then XOR-fold columns."""
        codes = self.inner.hash_many(keys)
        folded = np.zeros_like(codes)
        mask = np.int64((1 << self.folded_bits) - 1)
        while codes.any():
            folded ^= codes & mask
            codes = codes >> self.folded_bits
        return folded


class CoordHash(HashFunction):
    """COORD: the paper's proposed hash over a link-center's coordinates.

    Each Cartesian coordinate of the link center is encoded as a 16-bit
    fixed-point value and the top ``bits_per_axis`` MSBs of each axis are
    concatenated (Fig. 10). Physically nearby link positions — regardless of
    which joint values produced them — share a code.
    """

    def __init__(
        self,
        bits_per_axis: int = 4,
        fmt: FixedPointFormat = DEFAULT_WORKSPACE_FORMAT,
    ) -> None:
        if not 1 <= bits_per_axis <= fmt.word_bits:
            raise ValueError("bits_per_axis out of range")
        self.bits_per_axis = int(bits_per_axis)
        self.fmt = fmt

    @property
    def code_bits(self) -> int:
        return 3 * self.bits_per_axis

    def __call__(self, key: ArrayLike) -> int:
        center = np.asarray(key, dtype=float).reshape(-1)
        if center.shape[0] != 3:
            raise ValueError("COORD hashes a 3-vector link center")
        cells = self.fmt.msbs(center, self.bits_per_axis)
        return _pack_bits(cells, self.bits_per_axis)

    def hash_many(self, keys: ArrayLike) -> np.ndarray:
        """Vectorized COORD hashing: (N, 3) link centers -> (N,) codes.

        One :meth:`FixedPointFormat.msbs` pass encodes every coordinate of
        the batch (Fig. 10's per-axis MSB extraction as three array ops);
        the per-axis cells then pack into codes with two shift-and-or
        column operations.
        """
        centers = np.asarray(keys, dtype=float)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise ValueError(f"expected an (N, 3) center array, got shape {centers.shape}")
        cells = self.fmt.msbs(centers, self.bits_per_axis).astype(np.int64)
        return _pack_bits_many(cells, self.bits_per_axis)

    def cell_size(self) -> float:
        """Physical edge length of one hash bin."""
        return (self.fmt.hi - self.fmt.lo) / float(1 << self.bits_per_axis)
