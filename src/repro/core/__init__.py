"""The paper's primary contribution: COORD collision prediction.

This package holds the hash-function family (Sec. III-B/C), the Collision
History Table (Sec. III-D), the predictor implementations, the learned-hash
encoders, prediction-quality metrics, and the Fig. 13 statistical model of
computation reduction.
"""

from .adaptive import STRATEGY_BY_DENSITY, AdaptiveCHTPredictor, ObstacleDensityEstimator
from .cht import CollisionHistoryTable, shift_for_strategy
from .encoders import LatentHash, train_coord_autoencoder, train_pose_autoencoder
from .hashing import CoordHash, HashFunction, PoseFoldHash, PoseHash, PosePartHash
from .metrics import (
    ConfusionCounts,
    LatencyHistogram,
    PredictionEvaluator,
    ResilienceCounters,
)
from .mlp import MLP, DenseLayer, train_regression
from .predictor import (
    AlwaysPredictor,
    CHTPredictor,
    NeverPredictor,
    OraclePredictor,
    Predictor,
    RandomPredictor,
)
from .statistical_model import (
    ReductionEstimate,
    estimate_reduction,
    expected_cdqs_without_prediction,
    simulate_reduction,
)

__all__ = [
    "STRATEGY_BY_DENSITY",
    "AdaptiveCHTPredictor",
    "ObstacleDensityEstimator",
    "CollisionHistoryTable",
    "shift_for_strategy",
    "LatentHash",
    "train_coord_autoencoder",
    "train_pose_autoencoder",
    "CoordHash",
    "HashFunction",
    "PoseFoldHash",
    "PoseHash",
    "PosePartHash",
    "ConfusionCounts",
    "LatencyHistogram",
    "ResilienceCounters",
    "PredictionEvaluator",
    "MLP",
    "DenseLayer",
    "train_regression",
    "AlwaysPredictor",
    "CHTPredictor",
    "NeverPredictor",
    "OraclePredictor",
    "Predictor",
    "RandomPredictor",
    "ReductionEstimate",
    "estimate_reduction",
    "expected_cdqs_without_prediction",
    "simulate_reduction",
]
