"""Learned latent-space hash functions: ENPOSE and ENCOORD.

Section III-B: "We train a small encoder-decoder network on 32,768 random
poses using the loss between input poses and decoded poses. One-layer MLPs
are used as the encoder and decoder... We explore 2 and 4-dimensional latent
space representation and quantize latent space representation to generate
hash code." Section III-C applies the same recipe to link centers
(**ENCOORD**).

The paper's finding — that latent representations do *not* preserve physical
spatial locality, giving ENPOSE near-random precision — is an emergent
property of the autoencoder, and reproduces here without any special
handling.
"""

from __future__ import annotations

import numpy as np

from numpy.typing import ArrayLike

from .hashing import HashFunction, _pack_bits, quantize_to_bits
from .mlp import MLP, train_regression

__all__ = ["LatentHash", "train_pose_autoencoder", "train_coord_autoencoder"]

#: Training-set size from Sec. III-B. Benches may shrink this for speed.
PAPER_TRAINING_POSES = 32768


class LatentHash(HashFunction):
    """Hash = quantized latent code of a trained encoder.

    Instantiated as **ENPOSE** when the encoder was trained on C-space poses
    and **ENCOORD** when trained on link-center coordinates.
    """

    def __init__(
        self,
        encoder: MLP,
        latent_ranges: ArrayLike,
        bits_per_dim: int,
        expected_input: int,
    ) -> None:
        self.encoder = encoder
        self.latent_ranges = np.asarray(latent_ranges, dtype=float)
        if self.latent_ranges.ndim != 2 or self.latent_ranges.shape[1] != 2:
            raise ValueError("latent_ranges must be (latent_dim, 2)")
        self.bits_per_dim = int(bits_per_dim)
        self.expected_input = int(expected_input)
        self.latent_dim = self.latent_ranges.shape[0]

    @property
    def code_bits(self) -> int:
        return self.bits_per_dim * self.latent_dim

    def __call__(self, key: ArrayLike) -> int:
        x = np.asarray(key, dtype=float).reshape(-1)
        if x.shape[0] != self.expected_input:
            raise ValueError(f"expected input of size {self.expected_input}, got {x.shape[0]}")
        latent = self.encoder.predict(x)
        cells = quantize_to_bits(
            latent, self.latent_ranges[:, 0], self.latent_ranges[:, 1], self.bits_per_dim
        )
        return _pack_bits(cells, self.bits_per_dim)


def _train_autoencoder(
    samples: np.ndarray,
    latent_dim: int,
    bits_per_dim: int,
    rng: np.random.Generator,
    epochs: int,
) -> LatentHash:
    """Train a one-layer encoder/decoder pair and wrap the encoder."""
    dim = samples.shape[1]
    # One-layer encoder and one-layer decoder, trained jointly (Sec. III-B).
    autoencoder = MLP.create(rng, [dim, latent_dim, dim], hidden_activation="tanh")
    train_regression(autoencoder, samples, samples, rng, epochs=epochs, batch_size=128, lr=0.02)
    encoder = MLP(autoencoder.layers[:1])
    latents = encoder.forward(samples)
    lo = latents.min(axis=0)
    hi = latents.max(axis=0)
    span = np.maximum(hi - lo, 1e-6)
    ranges = np.stack([lo, lo + span], axis=1)
    return LatentHash(encoder, ranges, bits_per_dim, expected_input=dim)


def train_pose_autoencoder(
    joint_limits: np.ndarray,
    rng: np.random.Generator,
    latent_dim: int = 2,
    bits_per_dim: int = 6,
    num_samples: int = PAPER_TRAINING_POSES,
    epochs: int = 30,
) -> LatentHash:
    """Train **ENPOSE**: a latent hash over random C-space poses."""
    joint_limits = np.asarray(joint_limits, dtype=float)
    samples = rng.uniform(
        joint_limits[:, 0], joint_limits[:, 1], size=(num_samples, joint_limits.shape[0])
    )
    return _train_autoencoder(samples, latent_dim, bits_per_dim, rng, epochs)


def train_coord_autoencoder(
    centers: np.ndarray,
    rng: np.random.Generator,
    latent_dim: int = 2,
    bits_per_dim: int = 6,
    epochs: int = 30,
) -> LatentHash:
    """Train **ENCOORD**: a latent hash over observed link centers."""
    centers = np.asarray(centers, dtype=float)
    if centers.ndim != 2 or centers.shape[1] != 3:
        raise ValueError("centers must be (N, 3)")
    return _train_autoencoder(centers, latent_dim, bits_per_dim, rng, epochs)
