"""A minimal numpy multi-layer perceptron with SGD training.

Three of the paper's components use small neural networks:

* ENPOSE / ENCOORD hashing train "one-layer MLP" encoder-decoder pairs on
  random poses / link centers (Sec. III-B, III-C).
* The MPNet-style planner's sampler network (Sec. V) — substituted here by
  an MLP trained online by imitation (see DESIGN.md substitution #1).

Since the offline environment has no deep-learning framework, this module
implements dense layers, tanh/ReLU activations, mean-squared-error loss and
mini-batch SGD with momentum from scratch on numpy. It is intentionally
tiny — the paper's encoders are single-layer — but fully functional.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from numpy.typing import ArrayLike

__all__ = ["DenseLayer", "MLP", "train_regression"]

_ACTIVATIONS = {
    "linear": (lambda x: x, lambda x, y: np.ones_like(x)),
    "tanh": (np.tanh, lambda x, y: 1.0 - y**2),
    "relu": (lambda x: np.maximum(x, 0.0), lambda x, y: (x > 0).astype(float)),
}


@dataclass
class DenseLayer:
    """One fully-connected layer with an element-wise activation."""

    weights: np.ndarray
    bias: np.ndarray
    activation: str = "tanh"
    _cache: tuple | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {self.activation!r}")

    @classmethod
    def create(
        cls,
        rng: np.random.Generator,
        fan_in: int,
        fan_out: int,
        activation: str = "tanh",
    ) -> "DenseLayer":
        """Xavier-initialized layer."""
        scale = np.sqrt(2.0 / (fan_in + fan_out))
        return cls(
            weights=rng.normal(0.0, scale, size=(fan_in, fan_out)),
            bias=np.zeros(fan_out),
            activation=activation,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches pre-activations for the backward pass."""
        pre = x @ self.weights + self.bias
        act_fn, _ = _ACTIVATIONS[self.activation]
        out = act_fn(pre)
        self._cache = (x, pre, out)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward pass. Returns (grad_input, grad_weights, grad_bias)."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, pre, out = self._cache
        _, act_grad = _ACTIVATIONS[self.activation]
        grad_pre = grad_out * act_grad(pre, out)
        grad_w = x.T @ grad_pre / x.shape[0]
        grad_b = grad_pre.mean(axis=0)
        grad_in = grad_pre @ self.weights.T
        return grad_in, grad_w, grad_b


class MLP:
    """A feed-forward stack of :class:`DenseLayer`."""

    def __init__(self, layers: list[DenseLayer]) -> None:
        if not layers:
            raise ValueError("an MLP needs at least one layer")
        self.layers = layers

    @classmethod
    def create(
        cls,
        rng: np.random.Generator,
        sizes: list[int],
        hidden_activation: str = "tanh",
        output_activation: str = "linear",
    ) -> "MLP":
        """Build an MLP with the given layer ``sizes`` (input first)."""
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        layers = []
        for i in range(len(sizes) - 1):
            activation = output_activation if i == len(sizes) - 2 else hidden_activation
            layers.append(DenseLayer.create(rng, sizes[i], sizes[i + 1], activation))
        return cls(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run a (batch, features) array through every layer."""
        out = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: ArrayLike) -> np.ndarray:
        """Forward pass for a single example, returned as a 1-D vector."""
        return self.forward(np.atleast_2d(x))[0]

    def train_step(self, x: np.ndarray, target: np.ndarray, lr: float, velocities: list) -> float:
        """One SGD-with-momentum step on MSE loss; returns the batch loss."""
        out = self.forward(x)
        diff = out - np.atleast_2d(target)
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.shape[1]
        for idx in range(len(self.layers) - 1, -1, -1):
            grad, grad_w, grad_b = self.layers[idx].backward(grad)
            vel_w, vel_b = velocities[idx]
            vel_w *= 0.9
            vel_w -= lr * grad_w
            vel_b *= 0.9
            vel_b -= lr * grad_b
            self.layers[idx].weights += vel_w
            self.layers[idx].bias += vel_b
        return loss

    def init_velocities(self) -> list:
        """Zeroed momentum buffers, one (w, b) pair per layer."""
        return [
            (np.zeros_like(layer.weights), np.zeros_like(layer.bias)) for layer in self.layers
        ]


def train_regression(
    model: MLP,
    inputs: np.ndarray,
    targets: np.ndarray,
    rng: np.random.Generator,
    epochs: int = 50,
    batch_size: int = 64,
    lr: float = 0.05,
) -> list[float]:
    """Mini-batch SGD on mean-squared error. Returns per-epoch losses."""
    inputs = np.asarray(inputs, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if inputs.shape[0] != targets.shape[0]:
        raise ValueError("inputs and targets must have equal row counts")
    velocities = model.init_velocities()
    losses = []
    n = inputs.shape[0]
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            epoch_loss += model.train_step(inputs[batch], targets[batch], lr, velocities)
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    return losses
