"""Deterministic fault injection for the collision and serving stacks.

A resilience layer is only trustworthy if its failure paths are exercised
as repeatably as its happy path. This module provides a *seeded* fault
plan: every injection decision is a pure function of ``(seed, kind,
scope index, attempt)``, so a test, a chaos CI job, and a ``loadtest
--inject`` run all see the same faults for the same seed — and a retried
shard sees attempt-aware faults (by default a fault fires on the first
attempt only, so recovery can be asserted).

Fault kinds (``FAULT_KINDS``):

* ``crash``     — hard worker death (``os._exit`` in a pool worker, a
  :class:`WorkerCrashFault` escaping an asyncio worker loop);
* ``slow``      — a shard sleeps past its supervision timeout;
* ``exception`` — the kernel raises mid-batch (:class:`FaultInjected`);
* ``stall``     — an asyncio worker loop stops draining its queue for
  ``delay_s`` seconds;
* ``torn_write``       — a shared-CHT commit opens its epoch fence,
  scribbles partial counters and never closes it (the next fenced
  commit must roll it back exactly);
* ``corrupt_segment``  — shared-CHT counters are scribbled *outside*
  the fence (checksum mismatch; the bank must be quarantined);
* ``kill_mid_publish`` — the publisher SIGKILLs itself mid-commit while
  holding the cross-process publish lock.

The three shared-CHT kinds are decision-only here (like the asyncio
kinds): their side effects live in :mod:`repro.sharedcht.durability`
(``inject_torn_commit`` / ``inject_counter_corruption``), wired into the
sharded driver's publish path and the serving layer's bank checks.

The injector is picklable, so one instance configures both the parent
process and every ``ProcessPoolExecutor`` worker (each worker holds its
own copy; decisions agree because they are seed-derived, though
``max_triggers`` caps are then per-process).
"""

from __future__ import annotations

import os
import time
import zlib

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "FAULT_KINDS",
    "FaultInjected",
    "WorkerCrashFault",
    "FaultSpec",
    "FaultInjector",
]

#: The injectable failure modes.
FAULT_KINDS = (
    "crash",
    "slow",
    "exception",
    "stall",
    "torn_write",
    "corrupt_segment",
    "kill_mid_publish",
)


class FaultInjected(RuntimeError):
    """An injected kernel exception (the ``exception`` fault kind)."""


class WorkerCrashFault(RuntimeError):
    """An injected serving-worker death (the async ``crash`` fault kind)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: what kind, where, and how often.

    Targeting is either explicit (``indices`` — e.g. "shard 3 crashes")
    or statistical (``rate`` — each scope index is targeted with this
    probability, decided by a seeded hash so the choice is stable).
    ``attempts`` limits firing to specific retry attempts (default: the
    first attempt only, so supervised retries succeed); ``None`` fires on
    every attempt. ``max_triggers`` caps total firings per injector copy.
    """

    kind: str
    rate: float = 0.0
    indices: tuple = ()
    attempts: tuple = (0,)
    delay_s: float = 2.0
    max_triggers: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate!r}")
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be non-negative")


class FaultInjector:
    """Seeded decision engine over a list of :class:`FaultSpec`.

    :meth:`poll` is the pure decision ("does a fault fire here?") used by
    the asyncio serving layer, which implements the side effects itself;
    :meth:`fire` additionally *executes* the synchronous side effects
    (process exit, sleep, raise) and is what pool workers call.
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        #: Spec position -> number of times it has fired (per process).
        self.triggered: dict[int, int] = {}

    @property
    def total_triggered(self) -> int:
        """Faults fired so far by this injector copy."""
        return sum(self.triggered.values())

    def _targets(self, spec: FaultSpec, index: int) -> bool:
        """Deterministic targeting decision for one scope index."""
        if spec.indices:
            return index in spec.indices
        if spec.rate <= 0.0:
            return False
        if spec.rate >= 1.0:
            return True
        token = f"{self.seed}:{spec.kind}:{index}".encode("utf-8")
        draw = zlib.crc32(token) / 2**32
        return draw < spec.rate

    def poll(self, kind: str, index: int, attempt: int = 0) -> FaultSpec | None:
        """Return the first matching :class:`FaultSpec`, or None.

        A returned spec counts as a firing (``max_triggers`` decrements),
        so callers must follow through with the fault's side effect.
        """
        for position, spec in enumerate(self.specs):
            if spec.kind != kind:
                continue
            if spec.attempts is not None and attempt not in spec.attempts:
                continue
            if spec.max_triggers is not None:
                if self.triggered.get(position, 0) >= spec.max_triggers:
                    continue
            if not self._targets(spec, index):
                continue
            self.triggered[position] = self.triggered.get(position, 0) + 1
            return spec
        return None

    def fire(self, kind: str, index: int, attempt: int = 0) -> FaultSpec | None:
        """Poll and *execute* a synchronous fault (for pool workers).

        ``crash`` exits the process without cleanup (the pool sees a dead
        worker, exactly like an OOM kill); ``slow`` sleeps ``delay_s``;
        ``exception`` raises :class:`FaultInjected`. Returns the fired
        spec (or None) for the kinds that return at all.
        """
        spec = self.poll(kind, index, attempt)
        if spec is None:
            return None
        if kind == "crash":
            os._exit(13)
        if kind == "slow":
            time.sleep(spec.delay_s)
            return spec
        if kind == "exception":
            raise FaultInjected(f"injected exception (scope {index}, attempt {attempt})")
        return spec
