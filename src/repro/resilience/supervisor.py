"""Supervised execution of shard tasks over restartable process pools.

``ProcessPoolExecutor`` has an all-or-nothing failure model: one worker
dying (OOM kill, segfault in a native kernel, ``os._exit``) breaks the
whole pool and every in-flight future raises ``BrokenProcessPool``. For a
production collision service that is the wrong granularity — one poisoned
shard must not abort a million-motion workload. :class:`SupervisedPool`
wraps the executor with the supervision loop production job runners use:

1. submit every unfinished shard to the current pool;
2. wait for the round (optionally bounded by a timeout, which is how hung
   workers are detected — a future that never resolves);
3. collect per-shard results; classify failures (worker exception, broken
   pool, timeout);
4. restart the pool if it broke or hung, back off with seeded exponential
   jitter, and resubmit *only* the unfinished shards;
5. give up on a shard only after ``RetryPolicy.max_retries`` retries.

Results are keyed by shard index, so the caller's assembly order — and
therefore the final verdict stream — is independent of which attempt
finally succeeded.
"""

from __future__ import annotations

import time

from concurrent.futures import BrokenExecutor, Executor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from ..core.metrics import ResilienceCounters

import numpy as np

__all__ = ["RetryPolicy", "ShardFailureError", "SupervisedPool"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``delay_s(attempt)`` grows as ``base_delay_s * 2**attempt`` capped at
    ``max_delay_s``, scaled by a deterministic jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from ``seed`` — retries desynchronize
    across runs of different seeds yet replay identically under one seed.
    """

    max_retries: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0.0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        base = min(self.max_delay_s, self.base_delay_s * (2.0 ** max(attempt, 0)))
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, max(attempt, 0)]))
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class ShardFailureError(RuntimeError):
    """A shard kept failing after its retry budget was spent."""

    def __init__(self, shard: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard} failed {attempts} attempt(s); last cause: {cause!r}"
        )
        self.shard = shard
        self.attempts = attempts
        self.cause = cause


class SupervisedPool:
    """Retry/restart supervision over a replaceable process pool.

    Parameters
    ----------
    pool_factory:
        Zero-argument callable returning a fresh executor (with its
        initializer/initargs baked in); called again after every pool
        break or hang.
    retry:
        The :class:`RetryPolicy`; defaults to 3 retries with jittered
        exponential backoff.
    shard_timeout_s:
        Wall-clock budget for one dispatch round (all outstanding shards
        run concurrently, so this is the per-shard attempt budget when
        shards fit the pool). ``None`` disables hang detection.
    counters:
        Optional counter sink with a ``count(name, n=1)`` method (e.g.
        :class:`repro.core.metrics.ResilienceCounters`); receives
        ``shard_retries``, ``shard_timeouts`` and ``pool_restarts``.
    """

    def __init__(
        self,
        pool_factory: Callable[[], Executor],
        *,
        retry: RetryPolicy | None = None,
        shard_timeout_s: float | None = None,
        counters: "ResilienceCounters | None" = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.pool_factory = pool_factory
        self.retry = retry or RetryPolicy()
        self.shard_timeout_s = shard_timeout_s
        self.counters = counters
        self.sleep = sleep

    def _count(self, name: str, n: int = 1) -> None:
        if self.counters is not None:
            self.counters.count(name, n)

    def run(self, task_fn: Callable[..., object], shards: dict) -> dict:
        """Run ``task_fn(index, attempt, payload)`` for every shard.

        ``shards`` maps shard index -> payload. Returns a dict of shard
        index -> result containing every shard, or raises
        :class:`ShardFailureError` for the first shard whose retry budget
        is exhausted. Worker-side exceptions, broken pools, and round
        timeouts all route through the same retry path.
        """
        results: dict = {}
        attempts = {index: 0 for index in shards}
        pending = set(shards)
        pool = self.pool_factory()
        try:
            while pending:
                futures = {}
                broken = False
                for index in sorted(pending):
                    try:
                        futures[pool.submit(task_fn, index, attempts[index], shards[index])] = index
                    except (BrokenExecutor, RuntimeError):
                        # Pool died between rounds; unsubmitted shards
                        # simply ride into the next round's fresh pool.
                        broken = True
                        break
                done, not_done = wait(futures, timeout=self.shard_timeout_s)
                failed: dict = {}
                for future in done:
                    index = futures[future]
                    try:
                        results[index] = future.result()
                        pending.discard(index)
                    except BrokenExecutor as exc:
                        broken = True
                        failed[index] = exc
                    except Exception as exc:  # reprolint: disable=C001 -- re-raised as ShardFailureError when the retry budget is spent
                        failed[index] = exc
                if not_done:
                    # A hung worker never resolves its future: classify the
                    # stragglers as timeouts and rebuild the pool under them.
                    broken = True
                    for future in not_done:
                        index = futures[future]
                        failed[index] = TimeoutError(
                            f"shard {index} exceeded {self.shard_timeout_s}s round budget"
                        )
                        self._count("shard_timeouts")
                if failed:
                    for index, exc in failed.items():
                        attempts[index] += 1
                        self._count("shard_retries")
                        if attempts[index] > self.retry.max_retries:
                            raise ShardFailureError(index, attempts[index], exc)
                    self.sleep(self.retry.delay_s(max(attempts[i] for i in failed) - 1))
                if (broken or not_done) and pending:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self.pool_factory()
                    self._count("pool_restarts")
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results
