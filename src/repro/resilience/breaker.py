"""Circuit breakers and the exact→predicted degradation ladder.

The paper's core trade — answer from the CHT when the exact check is too
expensive — generalizes to *unavailable*: when an execution backend keeps
failing, the service should stop burning latency on attempts that will
fail and degrade to the next-cheaper rung, probing the broken rung
periodically for recovery. That is precisely a circuit breaker per rung:

* **closed**    — requests flow; ``failure_threshold`` consecutive
  failures trip the breaker open;
* **open**      — the rung is skipped outright until ``recovery_s`` has
  elapsed;
* **half_open** — one probe request is let through; success closes the
  breaker, failure re-opens it for another recovery window.

:class:`DegradationLadder` strings breakers over an ordered list of rung
names (e.g. ``("batch", "scalar")``); the serving layer walks
:meth:`DegradationLadder.plan` and falls through to the CHT-predicted
verdict when every exact rung is broken or circuit-broken.
"""

from __future__ import annotations

import time

from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:
    from ..core.metrics import ResilienceCounters

__all__ = ["BREAKER_STATES", "CircuitBreaker", "DegradationLadder"]

#: The breaker state machine's states.
BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Per-backend failure gate with closed/open/half-open states."""

    def __init__(
        self,
        name: str = "backend",
        failure_threshold: int = 3,
        recovery_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        counters: "ResilienceCounters | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if recovery_s < 0.0:
            raise ValueError("recovery_s must be non-negative")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.clock = clock
        self.counters = counters
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = 0.0

    def _count(self, counter: str) -> None:
        if self.counters is not None:
            self.counters.count(counter)

    def allow(self) -> bool:
        """May a request try this rung right now?

        In the open state this is also where recovery probing happens:
        once ``recovery_s`` has elapsed the breaker moves to half-open and
        admits the caller as the probe.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self.opened_at >= self.recovery_s:
                self.state = "half_open"
                self._count("breaker_probes")
                return True
            return False
        return True  # half_open: the probe (and any racers) may try

    def record_success(self) -> None:
        """A request on this rung completed: close the breaker."""
        self.state = "closed"
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        """A request on this rung failed: trip or re-open as appropriate."""
        self.consecutive_failures += 1
        if self.state == "half_open" or self.consecutive_failures >= self.failure_threshold:
            if self.state != "open":
                self._count("breaker_trips")
            self.state = "open"
            self.opened_at = self.clock()

    def snapshot(self) -> dict:
        """Plain-dict view for telemetry."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
        }


class DegradationLadder:
    """Ordered execution rungs, each guarded by its own breaker.

    ``plan()`` returns the rung names currently worth attempting, in
    preference order; an empty plan means "go straight to the terminal
    fallback" (the CHT-predicted verdict, which cannot fail).
    """

    def __init__(
        self,
        rungs: Iterable[str],
        *,
        failure_threshold: int = 3,
        recovery_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        counters: "ResilienceCounters | None" = None,
    ) -> None:
        self.rungs = tuple(rungs)
        if not self.rungs:
            raise ValueError("a ladder needs at least one rung")
        self.breakers = {
            name: CircuitBreaker(
                name,
                failure_threshold=failure_threshold,
                recovery_s=recovery_s,
                clock=clock,
                counters=counters,
            )
            for name in self.rungs
        }

    def plan(self) -> list:
        """Rung names currently admitted by their breakers, in order."""
        return [name for name in self.rungs if self.breakers[name].allow()]

    def record(self, rung: str, ok: bool) -> None:
        """Feed one attempt's outcome back into the rung's breaker."""
        if ok:
            self.breakers[rung].record_success()
        else:
            self.breakers[rung].record_failure()

    def snapshot(self) -> dict:
        """Per-rung breaker states for telemetry."""
        return {name: self.breakers[name].snapshot() for name in self.rungs}
