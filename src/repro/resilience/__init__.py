"""Fault tolerance: supervised pools, circuit breakers, fault injection.

The production counterpart of the paper's core idea. COORD's CHT stands
in for the exact collision check when the exact path is too *expensive*;
this package makes the same speculative verdict the graceful-degradation
floor when the exact path is *unavailable* — a crashed pool worker, a
broken execution backend, a stalled serving loop. Three pieces:

* :mod:`~repro.resilience.supervisor` — bounded-retry supervision over
  restartable process pools (used by
  :func:`repro.collision.batch_pipeline.check_motions_sharded`);
* :mod:`~repro.resilience.breaker` — per-backend circuit breakers and the
  batch → scalar → CHT-predicted degradation ladder the serving layer
  walks;
* :mod:`~repro.resilience.faults` — a seeded, deterministic fault
  injector (worker crash / slow shard / kernel exception / queue stall)
  shared by the tests, the chaos CI job, and ``loadtest --inject``.
"""

from .breaker import BREAKER_STATES, CircuitBreaker, DegradationLadder
from .faults import (
    FAULT_KINDS,
    FaultInjected,
    FaultInjector,
    FaultSpec,
    WorkerCrashFault,
)
from .supervisor import RetryPolicy, ShardFailureError, SupervisedPool

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "DegradationLadder",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultInjector",
    "FaultSpec",
    "WorkerCrashFault",
    "RetryPolicy",
    "ShardFailureError",
    "SupervisedPool",
]
