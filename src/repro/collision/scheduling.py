"""CDQ scheduling policies (Fig. 1a-1c).

* :class:`NaiveScheduler` — check discretized poses in path order
  (P1, P2, ..., Pn).
* :class:`CoarseStepScheduler` — the **CSP** policy of Shah et al. [43]:
  physically distant poses first, by striding the pose sequence with a step
  greater than 1 (step 3 turns P1..Pn into P1, P4, P7, ..., P2, P5, ...).
  CSP is the baseline every prediction result in the paper is normalized to.
* :class:`BisectionScheduler` — a classical alternative ordering (midpoint
  first, then recursive midpoints); included as an extra baseline.

A scheduler permutes *pose indices*; CDQ-level prioritization by predicted
outcome happens downstream in the detector (Algorithm 1) or in the hardware
Query Dispatcher.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["PoseScheduler", "NaiveScheduler", "CoarseStepScheduler", "BisectionScheduler"]


class PoseScheduler(ABC):
    """Produces the order in which a motion's discrete poses are checked."""

    name: str = "scheduler"

    @abstractmethod
    def order(self, num_poses: int) -> list[int]:
        """Return a permutation of ``range(num_poses)``."""

    def _check(self, num_poses: int) -> None:
        if num_poses < 1:
            raise ValueError("num_poses must be positive")


class NaiveScheduler(PoseScheduler):
    """Sequential order from the start pose toward the goal (Fig. 1a)."""

    name = "naive"

    def order(self, num_poses: int) -> list[int]:
        self._check(num_poses)
        return list(range(num_poses))


class CoarseStepScheduler(PoseScheduler):
    """Coarse-step policy (CSP) of Shah et al. [43] (Fig. 1b).

    With ``step = 3`` and 8 poses the order is 0, 3, 6, 1, 4, 7, 2, 5:
    physically distant poses are probed first so a colliding region is
    found after fewer CDQs than a linear scan.
    """

    name = "csp"

    def __init__(self, step: int = 4) -> None:
        if step < 1:
            raise ValueError("step must be >= 1")
        self.step = int(step)

    def order(self, num_poses: int) -> list[int]:
        self._check(num_poses)
        ordering = []
        for offset in range(min(self.step, num_poses)):
            ordering.extend(range(offset, num_poses, self.step))
        return ordering


class BisectionScheduler(PoseScheduler):
    """Recursive-midpoint order: endpoints, midpoint, quarter points, ...

    A classical van-der-Corput-style ordering used by OMPL's discrete
    motion validator; provided as an additional non-predictive baseline.
    """

    name = "bisection"

    def order(self, num_poses: int) -> list[int]:
        self._check(num_poses)
        if num_poses == 1:
            return [0]
        visited = [False] * num_poses
        ordering = [0, num_poses - 1]
        visited[0] = visited[num_poses - 1] = True
        segments = [(0, num_poses - 1)]
        while segments:
            next_segments = []
            for lo, hi in segments:
                if hi - lo < 2:
                    continue
                mid = (lo + hi) // 2
                if not visited[mid]:
                    visited[mid] = True
                    ordering.append(mid)
                next_segments.append((lo, mid))
                next_segments.append((mid, hi))
            segments = next_segments
        return ordering
