"""Wavefront-vectorized conservative advancement.

The discrete kernels (:mod:`repro.collision.batch_pipeline`) batch a
motion's poses because they are all known up front. Conservative
advancement is the opposite shape — Sec. VII's serial dependence: pose
``k+1``'s parameter depends on pose ``k``'s clearance, so one motion's
poses cannot be batched. What *can* be batched is a **wavefront across
motions**: at each advancement round, every still-active motion
contributes its current pose, and one batched FK + volume-packing +
clearance pass (:func:`repro.collision.continuous.link_clearance_gaps`)
serves the whole front.

The key observation that keeps this bit-identical to
:class:`~repro.collision.continuous.ContinuousMotionChecker` even with a
*shared* predictor: the advancement trajectory is predictor-independent.
A pose's clearance is ``0.0`` when any link touches, else the
order-independent minimum over all link gaps — prediction only reorders
which link is inspected first within the pose (the paper's scope claim).
So the kernel runs in two phases, the PR-5 masked-gate discipline applied
to continuous checking:

1. **geometry wavefront** — advance all motions together, recording each
   evaluated pose's per-link gaps and centers; every floating-point
   expression (pose interpolation, FK, gap kernel, step rule) is the one
   the scalar checker evaluates, and the batched primitives are
   batch-size independent, so the ``t`` sequences and ``poses_evaluated``
   match the scalar loop bit-for-bit;
2. **gate replay** — one :meth:`~repro.core.hashing.HashFunction.hash_many`
   pass over every evaluated link center, then the per-pose CDQ gate
   replays sequentially in motion-major order over the precomputed gap
   rows: batched table probes (:meth:`~repro.core.cht.CollisionHistoryTable.predict_many`)
   stand in for the scalar per-link ``predict`` calls (no write happens
   between one pose's predictions, so one probe is exact) and the
   executed run drains through the sequential-equivalent
   :meth:`~repro.core.cht.CollisionHistoryTable.update_many` — preserving
   the table's counters, statistics and RNG draw order exactly as if the
   motions had been checked one at a time.

Configurations the replay cannot vectorize (non-CHT predictors, hashes
too wide for ``hash_many``) fall back to the scalar checker per motion —
the same routing contract as the discrete predict-gated kernel.
"""

from __future__ import annotations

import numpy as np

from numpy.typing import ArrayLike

from ..core.predictor import CHTPredictor, Predictor
from .continuous import (
    ContinuousCheckResult,
    ContinuousMotionChecker,
    link_clearance_gaps,
)
from .queries import QueryStats

__all__ = ["BatchContinuousKernel"]


class _MotionTrace:
    """Geometry trace of one motion's conservative advancement.

    Phase 1 fills it with the verdict, pose count and one (gaps, centers)
    row per evaluated pose; phase 2 derives statistics and replays the
    prediction gate against it.
    """

    __slots__ = ("collided", "poses", "gap_rows", "center_rows")

    def __init__(self) -> None:
        self.collided = False
        self.poses = 0
        self.gap_rows: list[np.ndarray] = []
        self.center_rows: list[np.ndarray] = []


class BatchContinuousKernel:
    """Vectorized conservative advancement bound to one scalar checker.

    Shares the checker's scene, robot, ``min_step`` and
    ``collision_tolerance``; every :meth:`check_motions` call is a
    geometry wavefront across the motions plus a sequential gate replay,
    bit-identical to looping ``checker.check_motion`` over the same
    motions (verdicts, ``poses_evaluated``, :class:`QueryStats`, CHT
    counters and the RNG stream).
    """

    def __init__(self, checker: ContinuousMotionChecker) -> None:
        self.checker = checker

    # -- phase 1: geometry wavefront ----------------------------------------

    def _trace_motions(
        self, starts: list[np.ndarray], ends: list[np.ndarray]
    ) -> list[_MotionTrace]:
        """Advance all motions together, recording per-pose gap rows.

        Replays the scalar advancement loop per motion — same pose
        expression, same hit/clearance rule, same step rule, same
        zero-length special case — but evaluates the whole wavefront's
        link gaps in one batched FK + distance pass per round.
        """
        checker = self.checker
        robot = checker.robot
        obstacles = checker.obstacle_set()
        tol = checker.collision_tolerance
        num_links = robot.num_links
        reach = getattr(robot, "reach", lambda: 1.0)()
        speed_bound = max(reach, 1e-6)

        count = len(starts)
        starts_arr = np.stack(starts).astype(float, copy=False)
        deltas_arr = np.stack(ends).astype(float, copy=False) - starts_arr
        # Per-motion norms exactly as the scalar loop computes them (a 2D
        # axis reduction may sum in a different order).
        lengths = np.array([float(np.linalg.norm(d)) for d in deltas_arr])
        zero_len = lengths < 1e-12
        traces = [_MotionTrace() for _ in range(count)]
        collided = np.zeros(count, dtype=bool)
        t = np.zeros(count)
        active = np.arange(count)
        rounds: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        while active.size:
            qs = starts_arr[active] + t[active, None] * deltas_arr[active]
            pack = robot.batch_pose_obbs(qs)
            centers = np.asarray(pack.centers, dtype=float)
            gaps = link_clearance_gaps(
                centers, np.asarray(pack.half_extents, dtype=float), obstacles
            )
            gap_rows = gaps.reshape(active.size, num_links)
            center_rows = centers.reshape(active.size, num_links, 3)
            rounds.append((active, gap_rows, center_rows))
            # The gate's pose clearance: 0.0 on a touching link, else the
            # (order-independent) minimum link gap. Elementwise across the
            # front these are the scalar expressions verbatim.
            hit = (gap_rows <= tol).any(axis=1)
            clearance = np.where(hit, 0.0, gap_rows.min(axis=1))
            coll_now = clearance <= 0.0
            collided[active] |= coll_now
            # Zero-length motions: a single pose evaluation, then done.
            keep = ~zero_len[active] & ~coll_now & (t[active] < 1.0)
            nxt = active[keep]
            step = np.maximum(
                clearance[keep] / (speed_bound * lengths[nxt]),
                checker.min_step / np.maximum(lengths[nxt], 1e-9),
            )
            t[nxt] = np.minimum(1.0, t[nxt] + step)
            active = nxt
        for act, gap_rows, center_rows in rounds:
            for row, i in enumerate(act):
                traces[i].gap_rows.append(gap_rows[row])
                traces[i].center_rows.append(center_rows[row])
        for i, trace in enumerate(traces):
            trace.poses = len(trace.gap_rows)
            trace.collided = bool(collided[i])
        return traces

    # -- phase 2: statistics / gate replay -----------------------------------

    def _finish_unpredicted(self, trace: _MotionTrace) -> ContinuousCheckResult:
        """Derive the scalar in-order gate's statistics from a trace.

        Non-final poses are hit-free by construction (every link
        executes); only the final row can carry the early exit, whose
        executed/skipped split falls out of the first touching link.
        """
        tol = self.checker.collision_tolerance
        stats = QueryStats(motions_checked=1, poses_checked=trace.poses)
        last = trace.gap_rows[-1]
        stats.cdqs_executed = (trace.poses - 1) * len(last)
        hits = last <= tol
        if hits.any():
            first = int(np.argmax(hits))
            stats.cdqs_executed += first + 1
            stats.cdqs_skipped = len(last) - (first + 1)
        else:
            stats.cdqs_executed += len(last)
        if trace.collided:
            stats.motions_colliding = 1
        return ContinuousCheckResult(trace.collided, trace.poses, stats)

    def _finish_predicted(
        self, traces: list[_MotionTrace], predictor: CHTPredictor
    ) -> list[ContinuousCheckResult]:
        """Replay the per-pose CDQ gate against the CHT, motion-major.

        One ``hash_many`` pass covers every link center the wavefront
        evaluated; the gate then walks motions in submission order and
        poses in advancement order — exactly the sequence the scalar
        checker would feed a (possibly shared) predictor — so every
        probe, write and RNG draw lands in the scalar order.
        """
        tol = self.checker.collision_tolerance
        table = predictor.table
        flat_centers = np.concatenate(
            [centers for trace in traces for centers in trace.center_rows]
        )
        codes = np.asarray(predictor.hash_function.hash_many(flat_centers), dtype=np.int64)
        results: list[ContinuousCheckResult] = []
        offset = 0
        for trace in traces:
            stats = QueryStats(motions_checked=1, poses_checked=trace.poses)
            for row_gaps in trace.gap_rows:
                num_links = len(row_gaps)
                row_codes = codes[offset : offset + num_links]
                offset += num_links
                # All of a pose's predictions precede any of its
                # executions (no intra-pose aliasing hazard), so one
                # batched probe equals the scalar per-link predict calls.
                verdicts = table.predict_many(row_codes)
                stats.predictions_made += num_links
                flagged = np.flatnonzero(verdicts)
                stats.predicted_colliding += int(flagged.size)
                order = np.concatenate([flagged, np.flatnonzero(~verdicts)])
                ordered_hits = row_gaps[order] <= tol
                run = int(np.argmax(ordered_hits)) + 1 if ordered_hits.any() else num_links
                # The executed prefix updates the table in gate order —
                # update_many is sequential-equivalent (counters and RNG
                # draws land exactly as the scalar observe loop's).
                table.update_many(row_codes[order[:run]], ordered_hits[:run])
                stats.cdqs_executed += run
                if ordered_hits.any():
                    stats.cdqs_skipped += num_links - run
            if trace.collided:
                stats.motions_colliding = 1
            results.append(ContinuousCheckResult(trace.collided, trace.poses, stats))
        return results

    # -- entry points --------------------------------------------------------

    def check_motions(
        self,
        starts: "list[ArrayLike]",
        ends: "list[ArrayLike]",
        predictor: Predictor | None = None,
    ) -> list[ContinuousCheckResult]:
        """Check many motions through the wavefront; results in order.

        Predictors the gate replay cannot vectorize (non-CHT, or a hash
        without :attr:`~repro.core.hashing.HashFunction.vectorizable`)
        route through the scalar checker motion by motion — same results,
        no wavefront.
        """
        if len(starts) != len(ends):
            raise ValueError("starts and ends must have equal length")
        checker = self.checker
        if not starts:
            return []
        valid_starts = [checker.robot.validate_configuration(s) for s in starts]
        valid_ends = [checker.robot.validate_configuration(e) for e in ends]
        if predictor is not None and not (
            isinstance(predictor, CHTPredictor) and predictor.hash_function.vectorizable
        ):
            return [
                checker.check_motion(s, e, predictor)
                for s, e in zip(valid_starts, valid_ends)
            ]
        traces = self._trace_motions(valid_starts, valid_ends)
        if predictor is None:
            return [self._finish_unpredicted(trace) for trace in traces]
        assert isinstance(predictor, CHTPredictor)
        return self._finish_predicted(traces, predictor)

    def check_motion(
        self, start: ArrayLike, end: ArrayLike, predictor: Predictor | None = None
    ) -> ContinuousCheckResult:
        """Single-motion convenience wrapper over :meth:`check_motions`."""
        return self.check_motions([start], [end], predictor)[0]
