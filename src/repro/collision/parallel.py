"""Execution-cost model for CPU- and GPU-parallel collision detection.

Section III-E runs Algorithm 1 on a 4-core CPU (64 software threads over
*motions*) and a Titan V GPU (512-4096 threads over the *poses within* a
motion) and profiles two effects our model reproduces:

1. **Redundant work grows with parallelism.** When CDQs of a motion execute
   in SIMT waves, every CDQ in the wave that finds the first collision has
   already been issued — the early exit cannot reclaim it. Executed CDQs
   round up to wave boundaries.
2. **Software prediction costs runtime at high thread counts.** Shared-CHT
   accesses serialize (cache contention / memory stalls) and the skipped
   computation produces warp divergence, so although prediction removes
   CDQs, beyond ~1k threads the predicted configuration runs 30-70% slower
   (Fig. 11b) while still executing far fewer CDQs (Fig. 11a).

The model is parameterised by :class:`ParallelCostModel`; the defaults are
calibrated so the normalized curves match the paper's Fig. 11 shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from ..core.predictor import Predictor
from .detector import CollisionDetector
from .pipeline import Motion
from .queries import QueryStats
from .scheduling import PoseScheduler

__all__ = ["ParallelCostModel", "ParallelRunResult", "run_parallel_batch"]


@dataclass(frozen=True)
class ParallelCostModel:
    """Cost coefficients of the parallel execution model.

    All times are in arbitrary units (one serial CDQ = 1.0); every reported
    quantity is a ratio, so units cancel.
    """

    cdq_cost: float = 1.0
    #: Per-prediction CHT lookup cost on the critical path (cache traffic).
    cht_access_cost: float = 0.08
    #: Extra serialization per CHT access per 1024 threads sharing the table.
    cht_contention_per_1k_threads: float = 0.35
    #: Divergence multiplier per doubling of threads beyond the knee.
    divergence_per_doubling: float = 0.17
    #: Thread count beyond which divergence penalties kick in.
    divergence_knee_threads: int = 512
    #: Threads that cooperate on one motion ("lanes") per 64 total threads.
    lanes_per_64_threads: int = 1


@dataclass
class ParallelRunResult:
    """Executed-CDQ and runtime totals of one parallel configuration."""

    threads: int
    predicted: bool
    cdqs_executed: int
    runtime: float
    stats: QueryStats


def _wave_executed(serial_hit_position: int | None, total: int, lanes: int) -> int:
    """Executed CDQs when scanning in waves of ``lanes`` with early exit.

    ``serial_hit_position`` is the 1-based index of the first colliding CDQ
    in the scan order (None if the motion is collision-free).
    """
    if serial_hit_position is None:
        return total
    waves = math.ceil(serial_hit_position / lanes)
    return min(waves * lanes, total)


def run_parallel_batch(
    detector: CollisionDetector,
    motions: list[Motion],
    threads: int,
    scheduler: PoseScheduler | None = None,
    predictor: Predictor | None = None,
    model: ParallelCostModel | None = None,
) -> ParallelRunResult:
    """Model a parallel run of the motion batch at a given thread count.

    The serial Algorithm 1 execution provides the ground-truth CDQ order
    and first-hit position per motion; the cost model lifts those onto
    wave-granular parallel execution.
    """
    if threads < 1:
        raise ValueError("threads must be positive")
    model = model or ParallelCostModel()
    lanes = max(1, (threads // 64) * model.lanes_per_64_threads)
    stats = QueryStats()
    total_executed = 0
    total_waves = 0
    total_predictions = 0

    for motion in motions:
        cdqs = detector.motion_cdqs(motion.start, motion.end, motion.num_poses, scheduler)
        serial = QueryStats()
        if predictor is None:
            collided = detector.run_cdqs(cdqs, None, serial)
            hit = serial.cdqs_executed if collided else None
            executed = _wave_executed(hit, len(cdqs), lanes)
        else:
            collided = detector.run_cdqs(cdqs, predictor, serial)
            # Prediction already reordered execution; the serial executed
            # count is the effective scan length, rounded up to waves.
            hit = serial.cdqs_executed if collided else None
            executed = _wave_executed(hit, serial.cdqs_executed + serial.cdqs_skipped, lanes)
            total_predictions += serial.predictions_made
        stats.merge(serial)
        total_executed += executed
        total_waves += math.ceil(executed / lanes)

    runtime = total_waves * model.cdq_cost
    if predictor is not None:
        contention = model.cht_contention_per_1k_threads * (threads / 1024.0)
        runtime += total_predictions * model.cht_access_cost * (1.0 + contention) / lanes
        if threads > model.divergence_knee_threads:
            doublings = math.log2(threads / model.divergence_knee_threads)
            runtime *= 1.0 + model.divergence_per_doubling * doublings
    # CPU-style motion-level parallelism: motions themselves run in
    # parallel across thread groups, dividing wall-clock time.
    motion_groups = max(1, threads // max(lanes * 8, 1))
    runtime /= motion_groups
    return ParallelRunResult(
        threads=threads,
        predicted=predictor is not None,
        cdqs_executed=total_executed,
        runtime=runtime,
        stats=stats,
    )
