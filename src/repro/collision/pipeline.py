"""Batch harness: run many motion checks under a scheduler/predictor config.

The evaluation sections compare *configurations* (scheduler x predictor)
over a fixed population of motions. This module packages that loop,
including the CHT reset between planning queries (Sec. IV) and aggregation
of the executed-CDQ counters everything is normalized by.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.predictor import Predictor
from .detector import CollisionDetector
from .queries import MotionCheckResult, QueryStats
from .scheduling import PoseScheduler

__all__ = [
    "Motion",
    "BatchResult",
    "BACKENDS",
    "check_motion",
    "predict_motion",
    "check_motion_batch",
    "check_pose_many",
    "check_pose_batch",
    "predict_pose",
    "check_continuous_batch",
    "compare_schedulers",
    "get_default_backend",
    "set_default_backend",
]

#: The available motion-check execution engines. ``scalar`` is the
#: canonical per-CDQ scan the hardware simulators mirror; ``batch`` is the
#: vectorized whole-motion kernel of :mod:`repro.collision.batch_pipeline`.
#: Predicted checks over a CHT run the predict-gated batch kernel
#: (bit-identical to the scalar loop); configurations the kernel cannot
#: express (custom key functions, non-CHT predictors) fall back to scalar.
BACKENDS = ("scalar", "batch")

_default_backend = "scalar"


def set_default_backend(backend: str) -> None:
    """Set the process-wide default motion-check backend.

    Harnesses that cannot thread a ``backend`` argument through every call
    site (e.g. ``analysis/run_all.py --backend batch``) opt in here; any
    explicit per-call ``backend=`` still wins.
    """
    global _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    _default_backend = backend


def get_default_backend() -> str:
    """The process-wide default motion-check backend."""
    return _default_backend


def _resolve_backend(backend: str | None) -> str:
    if backend is None:
        return _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


@dataclass
class Motion:
    """One motion-environment check request: a straight C-space segment."""

    start: np.ndarray
    end: np.ndarray
    num_poses: int = 20

    def __post_init__(self) -> None:
        self.start = np.asarray(self.start, dtype=float)
        self.end = np.asarray(self.end, dtype=float)
        if self.num_poses < 2:
            raise ValueError("a motion needs at least 2 poses")


@dataclass
class BatchResult:
    """Aggregate outcome of a motion batch under one configuration."""

    label: str
    stats: QueryStats = field(default_factory=QueryStats)
    outcomes: list[bool] = field(default_factory=list)
    #: Per-motion path index of the pose that produced each colliding
    #: verdict (None for free motions); parallel to ``outcomes``.
    first_colliding_poses: list = field(default_factory=list)

    @property
    def colliding_fraction(self) -> float:
        """Fraction of checked motions that collided."""
        return sum(self.outcomes) / len(self.outcomes) if self.outcomes else 0.0

    @property
    def cdqs_executed(self) -> int:
        """Total executed CDQs across the batch."""
        return self.stats.cdqs_executed

    def reduction_vs(self, baseline: "BatchResult") -> float:
        """Fractional CDQ reduction relative to a baseline configuration."""
        if baseline.cdqs_executed == 0:
            return 0.0
        return 1.0 - self.cdqs_executed / baseline.cdqs_executed


def _motion_result(
    detector: CollisionDetector,
    motion: Motion,
    scheduler: PoseScheduler | None,
    predictor: Predictor | None,
    backend: str | None,
) -> MotionCheckResult:
    """Route one motion check through the selected execution engine.

    The batch backend covers predictor-free checks (the vectorized
    whole-motion kernel) and CHT-predicted checks (the predict-gated
    kernel, bit-identical to the scalar Algorithm 1 loop). Configurations
    the kernel cannot express — non-CHT predictors or custom key
    functions — run the canonical scalar engine regardless of the
    backend setting.
    """
    backend = _resolve_backend(backend)
    if backend == "batch":
        kernel = detector.batch_kernel()
        if predictor is None:
            return kernel.check_motion(
                motion.start, motion.end, motion.num_poses, scheduler
            )
        gated = kernel.check_motion_predicted(
            motion.start, motion.end, motion.num_poses, scheduler, predictor
        )
        if gated is not None:
            return gated
    return detector.check_motion(
        motion.start, motion.end, motion.num_poses, scheduler, predictor
    )


def check_motion(
    detector: CollisionDetector,
    motion: Motion,
    scheduler: PoseScheduler | None = None,
    predictor: Predictor | None = None,
    backend: str | None = None,
) -> tuple[bool, QueryStats]:
    """Check one :class:`Motion`; the shared inner step of every harness.

    Both the offline batch loop (:func:`check_motion_batch`) and the online
    serving layer (:mod:`repro.serving`) call this, so a motion costs the
    same CDQ stream no matter which entry point issued it. ``backend``
    picks the execution engine (None uses the process default).
    """
    check = _motion_result(detector, motion, scheduler, predictor, backend)
    return check.collided, check.stats


def predict_motion(
    detector: CollisionDetector,
    motion: Motion,
    scheduler: PoseScheduler | None = None,
    predictor: Predictor | None = None,
    backend: str | None = None,
) -> bool:
    """Predicted-only verdict: OR of the predictor over the motion's CDQs.

    No CDQ is executed and the predictor is not updated — this is the
    software analogue of COPU's early prediction, used by the serving
    layer's deadline-fallback path when the exact check cannot complete in
    time. With no predictor the verdict is ``False`` (nothing predicts a
    collision). The batch backend answers CHT-backed configurations with
    one batched hash-and-probe pass (scalar-identical verdict and read
    accounting, including the scalar generator's short-circuit); other
    predictors keep the scalar loop.
    """
    if predictor is None:
        return False
    if _resolve_backend(backend) == "batch":
        verdict = detector.batch_kernel().predict_motion(
            motion.start, motion.end, motion.num_poses, scheduler, predictor
        )
        if verdict is not None:
            return verdict
    return any(
        predictor.predict(detector.key_fn(cdq))
        for cdq in detector.motion_cdqs(motion.start, motion.end, motion.num_poses, scheduler)
    )


def check_motion_batch(
    detector: CollisionDetector,
    motions: list[Motion],
    scheduler: PoseScheduler | None = None,
    predictor: Predictor | None = None,
    label: str = "config",
    reset_predictor: bool = False,
    backend: str | None = None,
) -> BatchResult:
    """Check every motion; optionally reset the predictor between motions.

    Within a single planning query the CHT persists across motions (that is
    the entire point of history-based prediction); ``reset_predictor=True``
    models checking each motion as its own planning query. ``backend``
    selects the execution engine per motion (None uses the process
    default; see :data:`BACKENDS`).
    """
    result = BatchResult(label=label)
    for motion in motions:
        if reset_predictor and predictor is not None:
            predictor.reset()
        check = _motion_result(detector, motion, scheduler, predictor, backend)
        result.stats.merge(check.stats)
        result.outcomes.append(check.collided)
        result.first_colliding_poses.append(check.first_colliding_pose)
    return result


def check_pose_many(
    detector: CollisionDetector,
    qs: list[np.ndarray],
    predictor: Predictor | None = None,
    backend: str | None = None,
) -> list[MotionCheckResult]:
    """Check many poses; the planner-facing batched pose path.

    The batch backend routes through the detector's cached
    :meth:`~repro.collision.batch_pipeline.BatchMotionKernel.check_poses`
    (one FK/geometry/outcome pass for the whole batch, scalar fallback for
    configurations it cannot vectorize); the scalar backend loops
    :meth:`CollisionDetector.check_pose`. Results are bit-identical either
    way — same verdicts, statistics, table counters and RNG stream.
    """
    if _resolve_backend(backend) == "batch":
        return detector.check_pose_many(qs, predictor)
    return [detector.check_pose(q, predictor) for q in qs]


def check_pose_batch(
    detector: CollisionDetector,
    qs: list[np.ndarray],
    predictor: Predictor | None = None,
    label: str = "pose",
    backend: str | None = None,
) -> BatchResult:
    """Aggregate :func:`check_pose_many` into a :class:`BatchResult`.

    The serving layer's pose-query micro-batches drain through this: one
    outcome per pose, merged traffic statistics, ``first_colliding_poses``
    entries 0 (the pose itself) or None.
    """
    result = BatchResult(label=label)
    for check in check_pose_many(detector, qs, predictor, backend):
        result.stats.merge(check.stats)
        result.outcomes.append(check.collided)
        result.first_colliding_poses.append(check.first_colliding_pose)
    return result


def predict_pose(
    detector: CollisionDetector,
    q: np.ndarray,
    predictor: Predictor | None = None,
) -> bool:
    """Predicted-only verdict: OR of the predictor over one pose's CDQs.

    The pose-query analogue of :func:`predict_motion`, used by the serving
    layer's deadline fallback: no CDQ executes and the table is not
    written. With no predictor the verdict is False.
    """
    if predictor is None:
        return False
    return any(predictor.predict(detector.key_fn(cdq)) for cdq in detector.pose_cdqs(q))


def check_continuous_batch(
    detector: CollisionDetector,
    motions: list[Motion],
    predictor: Predictor | None = None,
    label: str = "continuous",
    backend: str | None = None,
) -> BatchResult:
    """Conservative-advancement checks over a motion batch.

    The batch backend runs the wavefront
    :class:`~repro.collision.continuous_batch.BatchContinuousKernel`
    (bit-identical to the scalar checker, including a shared predictor's
    table evolution); the scalar backend loops
    :meth:`~repro.collision.continuous.ContinuousMotionChecker.check_motion`.
    ``Motion.num_poses`` is ignored — advancement discretizes adaptively
    from clearance. ``first_colliding_poses`` entries are None: a
    continuous check has no discretized pose index to report.
    """
    result = BatchResult(label=label)
    if _resolve_backend(backend) == "batch":
        checks = detector.continuous_kernel().check_motions(
            [m.start for m in motions], [m.end for m in motions], predictor
        )
    else:
        checker = detector.continuous_checker()
        checks = [checker.check_motion(m.start, m.end, predictor) for m in motions]
    for check in checks:
        result.stats.merge(check.stats)
        result.outcomes.append(check.collided)
        result.first_colliding_poses.append(None)
    return result


def compare_schedulers(
    detector: CollisionDetector,
    motions: list[Motion],
    configurations: dict,
) -> dict[str, BatchResult]:
    """Run the same motion batch under several (scheduler, predictor) pairs.

    ``configurations`` maps a label to a ``(scheduler, predictor)`` tuple;
    results are keyed by the same labels. Each configuration sees identical
    motions, so executed-CDQ counts are directly comparable.
    """
    results = {}
    for label, (scheduler, predictor) in configurations.items():
        if predictor is not None:
            predictor.reset()
        results[label] = check_motion_batch(
            detector, motions, scheduler, predictor, label=label
        )
    return results
