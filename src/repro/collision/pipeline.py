"""Batch harness: run many motion checks under a scheduler/predictor config.

The evaluation sections compare *configurations* (scheduler x predictor)
over a fixed population of motions. This module packages that loop,
including the CHT reset between planning queries (Sec. IV) and aggregation
of the executed-CDQ counters everything is normalized by.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.predictor import Predictor
from .detector import CollisionDetector
from .queries import QueryStats
from .scheduling import PoseScheduler

__all__ = [
    "Motion",
    "BatchResult",
    "check_motion",
    "predict_motion",
    "check_motion_batch",
    "compare_schedulers",
]


@dataclass
class Motion:
    """One motion-environment check request: a straight C-space segment."""

    start: np.ndarray
    end: np.ndarray
    num_poses: int = 20

    def __post_init__(self) -> None:
        self.start = np.asarray(self.start, dtype=float)
        self.end = np.asarray(self.end, dtype=float)
        if self.num_poses < 2:
            raise ValueError("a motion needs at least 2 poses")


@dataclass
class BatchResult:
    """Aggregate outcome of a motion batch under one configuration."""

    label: str
    stats: QueryStats = field(default_factory=QueryStats)
    outcomes: list[bool] = field(default_factory=list)

    @property
    def colliding_fraction(self) -> float:
        """Fraction of checked motions that collided."""
        return sum(self.outcomes) / len(self.outcomes) if self.outcomes else 0.0

    @property
    def cdqs_executed(self) -> int:
        """Total executed CDQs across the batch."""
        return self.stats.cdqs_executed

    def reduction_vs(self, baseline: "BatchResult") -> float:
        """Fractional CDQ reduction relative to a baseline configuration."""
        if baseline.cdqs_executed == 0:
            return 0.0
        return 1.0 - self.cdqs_executed / baseline.cdqs_executed


def check_motion(
    detector: CollisionDetector,
    motion: Motion,
    scheduler: PoseScheduler | None = None,
    predictor: Predictor | None = None,
) -> tuple[bool, QueryStats]:
    """Check one :class:`Motion`; the shared inner step of every harness.

    Both the offline batch loop (:func:`check_motion_batch`) and the online
    serving layer (:mod:`repro.serving`) call this, so a motion costs the
    same CDQ stream no matter which entry point issued it.
    """
    check = detector.check_motion(
        motion.start, motion.end, motion.num_poses, scheduler, predictor
    )
    return check.collided, check.stats


def predict_motion(
    detector: CollisionDetector,
    motion: Motion,
    scheduler: PoseScheduler | None = None,
    predictor: Predictor | None = None,
) -> bool:
    """Predicted-only verdict: OR of the predictor over the motion's CDQs.

    No CDQ is executed and the predictor is not updated — this is the
    software analogue of COPU's early prediction, used by the serving
    layer's deadline-fallback path when the exact check cannot complete in
    time. With no predictor the verdict is ``False`` (nothing predicts a
    collision).
    """
    if predictor is None:
        return False
    return any(
        predictor.predict(detector.key_fn(cdq))
        for cdq in detector.motion_cdqs(motion.start, motion.end, motion.num_poses, scheduler)
    )


def check_motion_batch(
    detector: CollisionDetector,
    motions: list[Motion],
    scheduler: PoseScheduler | None = None,
    predictor: Predictor | None = None,
    label: str = "config",
    reset_predictor: bool = False,
) -> BatchResult:
    """Check every motion; optionally reset the predictor between motions.

    Within a single planning query the CHT persists across motions (that is
    the entire point of history-based prediction); ``reset_predictor=True``
    models checking each motion as its own planning query.
    """
    result = BatchResult(label=label)
    for motion in motions:
        if reset_predictor and predictor is not None:
            predictor.reset()
        collided, stats = check_motion(detector, motion, scheduler, predictor)
        result.stats.merge(stats)
        result.outcomes.append(collided)
    return result


def compare_schedulers(
    detector: CollisionDetector,
    motions: list[Motion],
    configurations: dict,
) -> dict[str, BatchResult]:
    """Run the same motion batch under several (scheduler, predictor) pairs.

    ``configurations`` maps a label to a ``(scheduler, predictor)`` tuple;
    results are keyed by the same labels. Each configuration sees identical
    motions, so executed-CDQ counts are directly comparable.
    """
    results = {}
    for label, (scheduler, predictor) in configurations.items():
        if predictor is not None:
            predictor.reset()
        results[label] = check_motion_batch(
            detector, motions, scheduler, predictor, label=label
        )
    return results
