"""Continuous (conservative-advancement) motion collision checking.

Section II-B contrasts the discrete approach the paper accelerates with
continuous checkers [8], [47], and Sec. VII explains why prediction helps
them less: "the next discrete pose to be checked for collision depends
upon the collision outcome of the current pose", so pose-environment
queries are *serially dependent* and only the CDQs within one pose can be
reordered.

This module implements that algorithm — conservative advancement with
per-pose clearance bounds — both as a substrate in its own right and as
the demonstration of the paper's scope claim: prediction may reorder the
CDQs of a single pose, but cannot skip ahead along the motion.

The scalar checker's geometry is computed through the same vectorized
primitives as the wavefront kernel
(:class:`repro.collision.continuous_batch.BatchContinuousKernel`):
one-pose batch FK (:meth:`~repro.kinematics.robots.RobotModel.batch_pose_obbs`)
and the shared clearance kernel
(:meth:`repro.geometry.batch.ObstacleSet.clearance_gaps`). That makes
scalar <-> batch bit-identity *structural* — both paths evaluate the same
floating-point expressions on the same arrays — instead of something a
parity test has to hope for.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from numpy.typing import ArrayLike

from ..core.predictor import Predictor
from ..env.scene import Scene
from ..geometry.batch import ObstacleSet
from ..kinematics.robots import RobotModel
from .queries import QueryStats

__all__ = [
    "ContinuousCheckResult",
    "ContinuousMotionChecker",
    "link_clearance_gaps",
]


@dataclass(frozen=True)
class ContinuousCheckResult:
    """Outcome of a conservative-advancement motion check.

    Frozen with ``__slots__`` like the other result records: a finished
    check is immutable evidence, and the advancement loop allocates one
    per motion, so the per-instance dict is pure overhead.
    """

    __slots__ = ("collided", "poses_evaluated", "stats")

    collided: bool
    poses_evaluated: int
    stats: QueryStats


def link_clearance_gaps(
    centers: np.ndarray,
    half_extents: np.ndarray,
    obstacles: ObstacleSet | None,
) -> np.ndarray:
    """Conservative per-volume obstacle clearance -> (M,) gaps.

    For packed link volume ``m`` with center ``c_m`` and circumscribed
    radius ``r_m = |half_extents_m|``, the gap is
    ``min_n max(0, d(c_m, obstacle_n) - r_m)`` — the bounding-sphere
    lower bound on the true link-obstacle separation (``inf`` with no
    obstacles). Never over-estimates, which is the property conservative
    advancement requires; shared verbatim by the scalar checker and the
    wavefront kernel so their clearances agree bit-for-bit.
    """
    if obstacles is None:
        return np.full(len(centers), np.inf)
    radii = np.linalg.norm(half_extents, axis=1)
    return obstacles.clearance_gaps(centers, radii)


def advance_gate(
    gaps: np.ndarray,
    centers: np.ndarray,
    predictor: Predictor | None,
    stats: QueryStats,
    tolerance: float,
) -> float:
    """One pose's CDQ gate over precomputed clearance bounds.

    With a predictor, links predicted to collide are evaluated first —
    the only freedom the paper notes continuous checking leaves for
    prediction (all predictions are made before any execution, then the
    flagged + rest order executes with ``observe`` feedback). Early exit
    on a touching link returns clearance ``0.0`` and records the
    remaining links as skipped CDQs — identically in the predicted and
    unpredicted paths, so parity tests can assert on stats.
    """
    num_links = len(gaps)
    order: "range | list[int]" = range(num_links)
    if predictor is not None:
        flagged: list[int] = []
        rest: list[int] = []
        for i in range(num_links):
            stats.predictions_made += 1
            if predictor.predict(centers[i]):
                stats.predicted_colliding += 1
                flagged.append(i)
            else:
                rest.append(i)
        order = flagged + rest
    clearance = float("inf")
    for rank, i in enumerate(order):
        stats.cdqs_executed += 1
        gap = float(gaps[i])
        hit = gap <= tolerance
        if predictor is not None:
            predictor.observe(centers[i], hit)
        if hit:
            stats.cdqs_skipped += num_links - (rank + 1)
            return 0.0
        clearance = min(clearance, gap)
    return clearance


class ContinuousMotionChecker:
    """Conservative advancement over a straight C-space motion.

    At each evaluated pose the checker computes, per link, the clearance
    to the nearest obstacle (one distance CDQ per link). The minimum
    clearance bounds how far the motion parameter may advance before any
    link could reach an obstacle; advancement repeats until a collision is
    found or the goal parameter is passed.

    The workspace velocity bound uses the conservative per-link motion
    bound ``|dq| * reach`` — links cannot move faster than the joint-space
    step times the arm's reach.
    """

    def __init__(
        self,
        scene: Scene,
        robot: RobotModel,
        min_step: float = 1e-3,
        collision_tolerance: float = 1e-3,
    ) -> None:
        self.scene = scene
        self.robot = robot
        self.min_step = float(min_step)
        self.collision_tolerance = float(collision_tolerance)

    def obstacle_set(self) -> ObstacleSet | None:
        """Packed obstacles (None for an empty scene), cached on the scene.

        Delegates to :meth:`~repro.env.scene.Scene.obstacle_set`, so the
        continuous checker, the batch kernels and the scalar detector all
        share one packed set — and one spatial index — per scene.
        """
        return self.scene.obstacle_set()

    def pose_link_gaps(self, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(L,) conservative link clearances and (L, 3) centers for one pose."""
        pack = self.robot.batch_pose_obbs(np.asarray(q, dtype=float)[None, :])
        centers = np.asarray(pack.centers, dtype=float)
        gaps = link_clearance_gaps(
            centers, np.asarray(pack.half_extents, dtype=float), self.obstacle_set()
        )
        return gaps, centers

    def _pose_clearance(
        self, q: np.ndarray, predictor: Predictor | None, stats: QueryStats
    ) -> float:
        """Minimum obstacle clearance over the pose's link volumes."""
        gaps, centers = self.pose_link_gaps(q)
        return advance_gate(gaps, centers, predictor, stats, self.collision_tolerance)

    def check_motion(
        self, start: ArrayLike, end: ArrayLike, predictor: Predictor | None = None
    ) -> ContinuousCheckResult:
        """Conservative advancement from ``start`` to ``end``."""
        start = self.robot.validate_configuration(start)
        end = self.robot.validate_configuration(end)
        stats = QueryStats(motions_checked=1)
        length = float(np.linalg.norm(end - start))
        if length < 1e-12:
            stats.poses_checked = 1
            clearance = self._pose_clearance(start, predictor, stats)
            collided = clearance <= 0.0
            if collided:
                stats.motions_colliding = 1
            return ContinuousCheckResult(collided, 1, stats)

        # Conservative workspace-speed bound for a unit joint-space step.
        reach = getattr(self.robot, "reach", lambda: 1.0)()
        speed_bound = max(reach, 1e-6)

        t = 0.0
        poses = 0
        while t <= 1.0:
            q = start + t * (end - start)
            poses += 1
            stats.poses_checked += 1
            clearance = self._pose_clearance(q, predictor, stats)
            if clearance <= 0.0:
                stats.motions_colliding += 1
                return ContinuousCheckResult(True, poses, stats)
            if t >= 1.0:
                break
            # Advance by the largest provably-safe parameter step.
            step = max(clearance / (speed_bound * length), self.min_step / max(length, 1e-9))
            t = min(1.0, t + step)
        return ContinuousCheckResult(False, poses, stats)
