"""Continuous (conservative-advancement) motion collision checking.

Section II-B contrasts the discrete approach the paper accelerates with
continuous checkers [8], [47], and Sec. VII explains why prediction helps
them less: "the next discrete pose to be checked for collision depends
upon the collision outcome of the current pose", so pose-environment
queries are *serially dependent* and only the CDQs within one pose can be
reordered.

This module implements that algorithm — conservative advancement with
per-pose clearance bounds — both as a substrate in its own right and as
the demonstration of the paper's scope claim: prediction may reorder the
CDQs of a single pose, but cannot skip ahead along the motion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from numpy.typing import ArrayLike

from ..core.predictor import Predictor
from ..env.scene import Scene
from ..geometry.distance import point_obb_distance
from ..kinematics.robots import RobotModel
from .queries import QueryStats

__all__ = ["ContinuousCheckResult", "ContinuousMotionChecker"]


@dataclass
class ContinuousCheckResult:
    """Outcome of a conservative-advancement motion check."""

    collided: bool
    poses_evaluated: int
    stats: QueryStats


class ContinuousMotionChecker:
    """Conservative advancement over a straight C-space motion.

    At each evaluated pose the checker computes, per link, the clearance
    to the nearest obstacle (one distance CDQ per link). The minimum
    clearance bounds how far the motion parameter may advance before any
    link could reach an obstacle; advancement repeats until a collision is
    found or the goal parameter is passed.

    The workspace velocity bound uses the conservative per-link motion
    bound ``|dq| * reach`` — links cannot move faster than the joint-space
    step times the arm's reach.
    """

    def __init__(
        self,
        scene: Scene,
        robot: RobotModel,
        min_step: float = 1e-3,
        collision_tolerance: float = 1e-3,
    ) -> None:
        self.scene = scene
        self.robot = robot
        self.min_step = float(min_step)
        self.collision_tolerance = float(collision_tolerance)

    def _pose_clearance(
        self, q: np.ndarray, predictor: Predictor | None, stats: QueryStats
    ) -> float:
        """Minimum obstacle clearance over the pose's link volumes.

        With a predictor, links predicted to collide are evaluated first —
        the only freedom the paper notes continuous checking leaves for
        prediction. Early exit on a touching link.
        """
        boxes = self.robot.pose_obbs(q)
        order = range(len(boxes))
        if predictor is not None:
            flagged = []
            rest = []
            for i, box in enumerate(boxes):
                stats.predictions_made += 1
                if predictor.predict(box.center):
                    stats.predicted_colliding += 1
                    flagged.append(i)
                else:
                    rest.append(i)
            order = flagged + rest
        clearance = float("inf")
        for i in order:
            box = boxes[i]
            stats.cdqs_executed += 1
            gap = min(
                (
                    max(0.0, point_obb_distance(box.center, obstacle) - float(np.linalg.norm(box.half_extents)))
                    for obstacle in self.scene.obstacles
                ),
                default=float("inf"),
            )
            hit = gap <= self.collision_tolerance
            if predictor is not None:
                predictor.observe(box.center, hit)
            if hit:
                return 0.0
            clearance = min(clearance, gap)
        return clearance

    def check_motion(
        self, start: ArrayLike, end: ArrayLike, predictor: Predictor | None = None
    ) -> ContinuousCheckResult:
        """Conservative advancement from ``start`` to ``end``."""
        start = self.robot.validate_configuration(start)
        end = self.robot.validate_configuration(end)
        stats = QueryStats(motions_checked=1)
        length = float(np.linalg.norm(end - start))
        if length < 1e-12:
            clearance = self._pose_clearance(start, predictor, stats)
            return ContinuousCheckResult(clearance <= 0.0, 1, stats)

        # Conservative workspace-speed bound for a unit joint-space step.
        reach = getattr(self.robot, "reach", lambda: 1.0)()
        speed_bound = max(reach, 1e-6)

        t = 0.0
        poses = 0
        while t <= 1.0:
            q = start + t * (end - start)
            poses += 1
            stats.poses_checked += 1
            clearance = self._pose_clearance(q, predictor, stats)
            if clearance <= 0.0:
                stats.motions_colliding += 1
                return ContinuousCheckResult(True, poses, stats)
            if t >= 1.0:
                break
            # Advance by the largest provably-safe parameter step.
            step = max(clearance / (speed_bound * length), self.min_step / max(length, 1e-9))
            t = min(1.0, t + step)
        return ContinuousCheckResult(False, poses, stats)
