"""Discrete pose- and motion-environment collision detection.

Implements the paper's Algorithm 1 ("Motion collision detection with
collision prediction") as the single execution engine for every evaluation
mode:

* predictor ``None`` → the pure scheduler-ordered baseline (naive or CSP);
* a :class:`~repro.core.predictor.CHTPredictor` over COORD → the paper's
  proposal;
* an :class:`~repro.core.predictor.OraclePredictor` → the Sec. III-A limit
  study (a colliding motion costs exactly one executed CDQ).

The engine walks the motion's discretized poses in scheduler order. Each
pose's link volumes are generated (the OBB Generation Unit step); for each
volume the predictor is consulted. Predicted-colliding CDQs execute
immediately (early exit on a hit); the rest are queued and drained only if
no predicted CDQ collided.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from numpy.typing import ArrayLike

from ..core.predictor import Predictor
from ..env.scene import Scene
from ..kinematics.link_geometry import LinkGeometry, generate_link_obbs, generate_link_spheres
from ..kinematics.robots import RobotModel
from .queries import CDQ, MotionCheckResult, QueryStats
from .scheduling import NaiveScheduler, PoseScheduler

if TYPE_CHECKING:
    from .batch_pipeline import BatchMotionKernel
    from .continuous import ContinuousMotionChecker
    from .continuous_batch import BatchContinuousKernel

__all__ = ["CollisionDetector", "coord_key", "pose_key"]


def coord_key(cdq: CDQ) -> np.ndarray:
    """Prediction key for the COORD family: the link-center coordinates."""
    return cdq.geometry.center


def pose_key(cdq: CDQ) -> np.ndarray:
    """Prediction key for the POSE family: the C-space pose vector."""
    return cdq.pose


class CollisionDetector:
    """Motion/pose collision checking against one scene.

    Parameters
    ----------
    scene:
        The obstacle environment (fixed for the detector's lifetime,
        mirroring the single-measurement assumption of Sec. II-B).
    robot:
        The robot model providing link geometry.
    representation:
        ``"obb"`` (default) or ``"sphere"`` — which bounding volumes the
        CDUs test (Sec. VII-1 uses spheres).
    key_fn:
        Maps a CDQ to the predictor key; defaults to :func:`coord_key`.
    """

    def __init__(
        self,
        scene: Scene,
        robot: RobotModel,
        representation: str = "obb",
        key_fn: Callable[[CDQ], object] = coord_key,
    ) -> None:
        if representation not in ("obb", "sphere"):
            raise ValueError("representation must be 'obb' or 'sphere'")
        self.scene = scene
        self.robot = robot
        self.representation = representation
        self.key_fn = key_fn
        self._batch_kernel: "BatchMotionKernel | None" = None
        self._continuous_checker: "ContinuousMotionChecker | None" = None
        self._continuous_kernel: "BatchContinuousKernel | None" = None

    def batch_kernel(self) -> "BatchMotionKernel":
        """The cached vectorized whole-motion kernel over this detector.

        Lazily built (and rebuilt whenever the scene's obstacle list
        changes) so repeated batch-backend checks reuse the packed
        obstacle arrays. See
        :class:`repro.collision.batch_pipeline.BatchMotionKernel`.
        """
        from .batch_pipeline import BatchMotionKernel

        kernel = self._batch_kernel
        if kernel is None or not kernel.matches_scene():
            kernel = BatchMotionKernel(self)
            self._batch_kernel = kernel
        return kernel

    def continuous_checker(self) -> "ContinuousMotionChecker":
        """The cached conservative-advancement checker over this detector.

        Scene staleness is handled inside the checker (its packed obstacle
        set rebuilds whenever the scene's obstacle list changes), so the
        instance itself can be cached unconditionally.
        """
        from .continuous import ContinuousMotionChecker

        checker = self._continuous_checker
        if checker is None:
            checker = ContinuousMotionChecker(self.scene, self.robot)
            self._continuous_checker = checker
        return checker

    def continuous_kernel(self) -> "BatchContinuousKernel":
        """The cached wavefront kernel over :meth:`continuous_checker`."""
        from .continuous_batch import BatchContinuousKernel

        kernel = self._continuous_kernel
        if kernel is None:
            kernel = BatchContinuousKernel(self.continuous_checker())
            self._continuous_kernel = kernel
        return kernel

    def _pose_geometry(self, q: np.ndarray) -> list[LinkGeometry]:
        if self.representation == "obb":
            return generate_link_obbs(self.robot, q)
        return generate_link_spheres(self.robot, q)

    def pose_cdqs(self, q: ArrayLike, pose_index: int = 0) -> list[CDQ]:
        """All CDQs of one pose (one per bounding volume)."""
        q = self.robot.validate_configuration(q)
        return [CDQ(pose_index=pose_index, geometry=g, pose=q) for g in self._pose_geometry(q)]

    def motion_cdqs(
        self,
        start: ArrayLike,
        end: ArrayLike,
        num_poses: int,
        scheduler: PoseScheduler | None = None,
    ) -> list[CDQ]:
        """All CDQs of a discretized motion, in scheduler pose order."""
        scheduler = scheduler or NaiveScheduler()
        poses = self.robot.interpolate(start, end, num_poses)
        cdqs: list[CDQ] = []
        for pose_index in scheduler.order(num_poses):
            cdqs.extend(self.pose_cdqs(poses[pose_index], pose_index))
        return cdqs

    def _execute(self, cdq: CDQ, stats: QueryStats) -> bool:
        """Run one CDQ against the scene; account for its work."""
        collided, tests, broad, pruned = self.scene.volume_collision_profile(
            cdq.geometry.volume
        )
        stats.cdqs_executed += 1
        stats.narrow_phase_tests += tests
        stats.broad_phase_tests += broad
        stats.broad_phase_pruned += pruned
        return collided

    def run_cdqs(self, cdqs: list[CDQ], predictor: Predictor | None, stats: QueryStats) -> bool:
        """Algorithm 1 over an already-ordered CDQ list.

        Without a predictor this degenerates to an in-order early-exit scan.
        With one, predicted-colliding CDQs run eagerly and the remainder is
        queued, then drained. Every executed CDQ's outcome is fed back via
        ``observe``.
        """
        collided, _ = self.run_cdqs_traced(cdqs, predictor, stats)
        return collided

    def run_cdqs_traced(
        self, cdqs: list[CDQ], predictor: Predictor | None, stats: QueryStats
    ) -> tuple[bool, int | None]:
        """:meth:`run_cdqs` plus the pose index that triggered the early exit.

        Returns ``(collided, hit_pose_index)`` where ``hit_pose_index`` is
        the ``pose_index`` of the CDQ whose execution produced the colliding
        verdict (None when the scan completes collision-free).
        """
        if predictor is None:
            for cdq in cdqs:
                if self._execute(cdq, stats):
                    stats.cdqs_skipped += len(cdqs) - stats.cdqs_executed
                    return True, cdq.pose_index
            return False, None

        queue: list[CDQ] = []
        executed = 0
        for cdq in cdqs:
            key = self.key_fn(cdq)
            stats.predictions_made += 1
            if predictor.predict(key):
                stats.predicted_colliding += 1
                collided = self._execute(cdq, stats)
                executed += 1
                predictor.observe(key, collided)
                if collided:
                    stats.cdqs_skipped += len(cdqs) - executed
                    return True, cdq.pose_index
            else:
                queue.append(cdq)
        for cdq in queue:
            collided = self._execute(cdq, stats)
            executed += 1
            predictor.observe(self.key_fn(cdq), collided)
            if collided:
                stats.cdqs_skipped += len(cdqs) - executed
                return True, cdq.pose_index
        return False, None

    def check_pose(self, q: ArrayLike, predictor: Predictor | None = None) -> MotionCheckResult:
        """Pose-environment collision check (OR over the pose's CDQs)."""
        stats = QueryStats(poses_checked=1)
        collided, hit_pose = self.run_cdqs_traced(self.pose_cdqs(q), predictor, stats)
        return MotionCheckResult(collided=collided, stats=stats, first_colliding_pose=hit_pose)

    def check_pose_many(
        self, qs: ArrayLike, predictor: Predictor | None = None
    ) -> list[MotionCheckResult]:
        """Batched pose-environment checks (one result per pose, in order).

        Planner-facing fast path: routes through the cached
        :meth:`batch_kernel`'s :meth:`~BatchMotionKernel.check_poses`
        (one FK/geometry/outcome pass for the whole batch, bit-identical
        to looping :meth:`check_pose`), falling back to the scalar loop
        for configurations the kernel cannot vectorize.
        """
        results = self.batch_kernel().check_poses(qs, predictor)
        if results is None:
            results = [self.check_pose(q, predictor) for q in np.asarray(qs, dtype=float)]
        return results

    def check_motion(
        self,
        start: ArrayLike,
        end: ArrayLike,
        num_poses: int = 20,
        scheduler: PoseScheduler | None = None,
        predictor: Predictor | None = None,
    ) -> MotionCheckResult:
        """Motion-environment collision check over a discretized motion."""
        stats = QueryStats(motions_checked=1, poses_checked=num_poses)
        cdqs = self.motion_cdqs(start, end, num_poses, scheduler)
        collided, hit_pose = self.run_cdqs_traced(cdqs, predictor, stats)
        if collided:
            stats.motions_colliding += 1
        return MotionCheckResult(collided=collided, stats=stats, first_colliding_pose=hit_pose)

    def ground_truth_fn(self) -> Callable[[CDQ], bool]:
        """Closure for :class:`OraclePredictor`: true CDQ outcome per key.

        Only meaningful with :func:`coord_key`-style keys when the key is a
        link center — the oracle needs the actual volume, so we instead
        return a function over CDQs; pair it with ``key_fn=lambda c: c``.
        """
        def truth(cdq: CDQ) -> bool:
            return self.scene.volume_collides(cdq.geometry.volume)

        return truth

    def make_oracle_detector(self) -> "CollisionDetector":
        """Clone of this detector keyed by whole CDQs, for oracle runs."""
        return CollisionDetector(
            self.scene, self.robot, self.representation, key_fn=lambda cdq: cdq
        )
