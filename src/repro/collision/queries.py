"""Collision Detection Query (CDQ) records and execution statistics.

A CDQ is the unit of work everything in the paper counts: one intersection
test between a single robot bounding volume and the environment (Sec. II-B).
A pose-environment check is the OR over its links' CDQs; a motion check is
the OR over the CDQs of its discretized poses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kinematics.link_geometry import LinkGeometry

__all__ = ["CDQ", "QueryStats", "MotionCheckResult"]


@dataclass
class CDQ:
    """One schedulable collision detection query.

    Attributes
    ----------
    pose_index:
        Index of the discretized pose this volume belongs to within its
        motion (0 for standalone pose checks).
    geometry:
        The link volume and hash-input center.
    pose:
        The C-space pose vector (the key for POSE-family hashes).
    """

    pose_index: int
    geometry: LinkGeometry
    pose: np.ndarray

    def __post_init__(self) -> None:
        self.pose = np.asarray(self.pose, dtype=float)


@dataclass
class QueryStats:
    """Accumulated execution counters for one or more collision checks."""

    cdqs_executed: int = 0
    cdqs_skipped: int = 0
    narrow_phase_tests: int = 0
    #: Obstacle AABB tests the broad phase performed for executed CDQs —
    #: candidate pairs *examined*. The dense path examines every
    #: (CDQ, obstacle) pair it reaches; the BVH path examines only the
    #: leaves its traversal touches.
    broad_phase_tests: int = 0
    #: Obstacle AABB tests the spatial index skipped outright (always 0 on
    #: the dense path; under the BVH, ``tests + pruned`` per executed CDQ
    #: sums to the obstacle count).
    broad_phase_pruned: int = 0
    predictions_made: int = 0
    predicted_colliding: int = 0
    motions_checked: int = 0
    motions_colliding: int = 0
    poses_checked: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another stats record into this one."""
        self.cdqs_executed += other.cdqs_executed
        self.cdqs_skipped += other.cdqs_skipped
        self.narrow_phase_tests += other.narrow_phase_tests
        self.broad_phase_tests += other.broad_phase_tests
        self.broad_phase_pruned += other.broad_phase_pruned
        self.predictions_made += other.predictions_made
        self.predicted_colliding += other.predicted_colliding
        self.motions_checked += other.motions_checked
        self.motions_colliding += other.motions_colliding
        self.poses_checked += other.poses_checked

    @property
    def total_cdqs(self) -> int:
        """Executed plus skipped CDQs (the full query population)."""
        return self.cdqs_executed + self.cdqs_skipped


@dataclass
class MotionCheckResult:
    """Outcome of one motion-environment (or pose-environment) check."""

    collided: bool
    stats: QueryStats = field(default_factory=QueryStats)
    #: Path index of the pose whose CDQ produced the colliding verdict
    #: (None for collision-free checks). For predictor-free runs this is
    #: the first colliding CDQ in scheduler order, which is how the batch
    #: backend preserves early-exit semantics at the reporting level.
    first_colliding_pose: int | None = None

    @property
    def cdqs_executed(self) -> int:
        """Shortcut to the executed-CDQ count."""
        return self.stats.cdqs_executed
