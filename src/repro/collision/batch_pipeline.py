"""Whole-motion vectorized collision kernel and process-pool sharding.

The scalar detector walks a motion's CDQs one pose and one link at a time
— the exact workload the paper's Sec. III-E baselines show is
embarrassingly parallel over poses x links x obstacles. This module lifts
the whole hot path into numpy:

1. batched DH forward kinematics produces every link frame of a (P, dof)
   pose array in stacked matmuls (:meth:`DHChain.batch_link_transforms`);
2. the link-geometry step emits one packed volume array per motion
   (:meth:`RobotModel.batch_pose_obbs` / ``batch_pose_spheres``);
3. :class:`BatchMotionKernel` evaluates all (pose-link, obstacle) pairs
   with the einsum SAT kernels of :mod:`repro.geometry.batch` and then
   *derives* the scalar early-exit semantics from the full outcome
   matrix: verdict, first-colliding-pose index, executed/skipped CDQ
   counts and broad-phase test counts are identical to what the scalar
   predictor-free scan would have reported;
4. CHT-predicted checks run **predict-gated**
   (:meth:`BatchMotionKernel.check_motion_predicted`): all link centers of
   the motion are hashed in one :meth:`~repro.core.hashing.HashFunction.hash_many`
   pass, the CHT is consulted batched, and only Algorithm 1's *gate* —
   the order/short-circuit decisions that depend on intra-motion table
   updates — replays sequentially over precomputed integer arrays. Codes,
   predictions, counter states and traffic statistics are bit-identical
   to the scalar loop on the same seed;
5. :func:`check_motions_sharded` fans whole motions out over a
   *supervised* ``ProcessPoolExecutor`` (:mod:`repro.resilience`): crashed
   or hung workers break only their shard, which is retried with bounded
   backoff on a restarted pool instead of aborting the workload. With a
   ``shared_predictor=`` the workers are no longer predictor-free: each
   syncs a private :class:`~repro.sharedcht.WorkerCHT` from the shared
   counter banks at start, runs the predict-gated kernel against it, and
   ships per-shard deltas back for the parent's merge-on-join commit.

The scalar path stays canonical for the hardware simulators; this backend
is its exact, property-tested software counterpart.
"""

from __future__ import annotations

import dataclasses
import math
import os

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any

import numpy as np

from numpy.typing import ArrayLike

from ..geometry.batch import obb_pairs_overlap, sphere_pairs_overlap
from ..core.predictor import CHTPredictor, Predictor
from ..resilience import FaultInjector, RetryPolicy, SupervisedPool
from ..sharedcht import SegmentManager, SharedCHT, SharedPredictorSpec
from ..sharedcht.durability import inject_torn_commit
from ..sharedcht.worker import CHTDeltas, WorkerCHT
from .detector import CollisionDetector, coord_key, pose_key
from .queries import MotionCheckResult, QueryStats
from .scheduling import NaiveScheduler, PoseScheduler

if TYPE_CHECKING:
    from ..core.cht import CollisionHistoryTable
    from ..core.metrics import ResilienceCounters
    from ..geometry.batch import ObstacleSet
    from .pipeline import BatchResult, Motion

__all__ = ["BatchMotionKernel", "check_motion_batched", "check_motions_sharded"]


class BatchMotionKernel:
    """Vectorized motion checker bound to one detector.

    Packs the detector's obstacle set once; every subsequent
    :meth:`check_motion` (predictor-free) or
    :meth:`check_motion_predicted` (predict-gated, CHT-backed) is a
    handful of einsums over the whole (poses x links x obstacles)
    workload plus one batched hash/table pass. Results match the scalar
    :meth:`CollisionDetector.check_motion` bit-for-bit: same verdict,
    same first-colliding-pose index, same executed/skipped CDQ counts,
    narrow-phase test totals, predictions, counter states and RNG stream.
    """

    def __init__(self, detector: CollisionDetector) -> None:
        self.detector = detector
        self._scene = detector.scene

    @property
    def obstacles(self) -> "ObstacleSet | None":
        """The scene's packed obstacle view (cached on the scene itself).

        Resolved per query through :meth:`Scene.obstacle_set`, so the
        kernel shares one packed set — and one spatial index — with every
        other checker on the same scene, and in-place scene mutations are
        picked up without rebuilding the kernel.
        """
        return self.detector.scene.obstacle_set()

    def matches_scene(self) -> bool:
        """True while the kernel is still bound to the detector's scene.

        In-place mutations of the bound scene are tracked through the
        scene's own obstacle-set cache; only swapping the detector to a
        different :class:`Scene` object invalidates the kernel.
        """
        return self.detector.scene is self._scene

    def _pack_motion(self, poses: np.ndarray) -> tuple[Any, np.ndarray, str]:
        """Packed volumes of every (pose, link) pair plus per-row pose ids."""
        robot = self.detector.robot
        if self.detector.representation == "obb":
            pack = robot.batch_pose_obbs(poses)
            pose_ids = np.repeat(np.arange(poses.shape[0]), robot.num_links)
            return pack, pose_ids, "obb"
        pack, pose_ids = robot.batch_pose_spheres(poses)
        return pack, pose_ids, "sphere"

    def _row_order(self, pose_ids: np.ndarray, order: np.ndarray) -> np.ndarray:
        """Row permutation putting CDQ rows into scheduler pose order."""
        num_poses = int(pose_ids[-1]) + 1 if len(pose_ids) else 0
        row_starts = np.searchsorted(pose_ids, np.arange(num_poses + 1))
        return np.concatenate(
            [np.arange(row_starts[p], row_starts[p + 1]) for p in order]
        )

    def _row_outcomes(
        self, pack: Any, kind: str, row_order: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-CDQ (outcome, narrow tests, broad tests, broad pruned).

        All four vectors come back in scheduler order. The narrow-phase
        counts replicate :meth:`Scene.volume_collision_work` exactly: each
        row charges one test per broad-phase candidate up to and including
        its first narrow-phase hit (all of them when the row is
        collision-free). The broad phase never materializes the (M, N)
        matrix: :meth:`ObstacleSet.candidate_pairs` yields the K surviving
        (row, obstacle) pairs — by dense mask or BVH traversal, identical
        either way — which are gathered and SAT-tested flat, so narrow
        cost is proportional to K instead of M*N. Broad-phase counts
        mirror the scalar profile: dense rows charge the early-exiting
        obstacle scan (hit obstacle index + 1, or N when free); indexed
        rows charge the traversal's leaf tests, with the remainder
        reported as pruned.
        """
        total = len(row_order)
        obstacles = self.obstacles
        zeros = np.zeros(total, dtype=np.int64)
        if obstacles is None:
            # Empty scene: every CDQ is collision-free with zero tests.
            return np.zeros(total, dtype=bool), zeros, zeros.copy(), zeros.copy()
        lo, hi = pack.aabb_bounds()
        num_obstacles = len(obstacles)
        rows, cols, examined = obstacles.candidate_pairs(lo, hi)
        pairs = len(rows)
        if pairs:
            if kind == "obb":
                hits = obb_pairs_overlap(pack, obstacles, rows, cols)
            else:
                hits = sphere_pairs_overlap(pack, obstacles, rows, cols)
        else:
            hits = np.zeros(0, dtype=bool)
        # Sparse per-row reduction: candidate pairs arrive row-major, so
        # row m owns the contiguous segment [starts[m], starts[m] + counts[m]).
        counts = np.bincount(rows, minlength=total).astype(np.int64)
        starts = np.zeros(total, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        first = np.full(total, pairs, dtype=np.int64)
        populated = counts > 0
        if pairs and populated.any():
            # Position of each row's first narrow hit: misses map to the
            # out-of-range sentinel so the segment min stays the sentinel
            # for collision-free rows.
            hit_pos = np.where(hits, np.arange(pairs, dtype=np.int64), pairs)
            first[populated] = np.minimum.reduceat(hit_pos, starts[populated])
        outcomes = first < pairs
        tests = np.where(outcomes, first - starts + 1, counts)
        if obstacles.mode() == "dense":
            broad = np.full(total, num_obstacles, dtype=np.int64)
            if pairs:
                # The scalar dense scan stops testing AABBs at the first
                # narrow hit: that row's count is the hit obstacle's
                # 1-based index.
                broad[outcomes] = cols[first[outcomes]] + 1
            pruned = np.zeros(total, dtype=np.int64)
        else:
            broad = examined.astype(np.int64)
            pruned = num_obstacles - broad
        return (
            outcomes[row_order],
            tests[row_order],
            broad[row_order],
            pruned[row_order],
        )

    def _row_keys(
        self, pack: Any, pose_ids: np.ndarray, poses: np.ndarray
    ) -> np.ndarray | None:
        """Per-row predictor keys, or None when the key function is custom.

        COORD keys are the packed volume centers (bit-identical to the
        scalar CDQ geometry centers); POSE keys are each row's C-space
        pose vector. Custom key functions need the scalar CDQ objects, so
        callers fall back to the scalar engine.
        """
        key_fn = self.detector.key_fn
        if key_fn is coord_key:
            return np.asarray(pack.centers, dtype=float)
        if key_fn is pose_key:
            return np.asarray(poses, dtype=float)[pose_ids]
        return None

    def check_motion(
        self,
        start: ArrayLike,
        end: ArrayLike,
        num_poses: int = 20,
        scheduler: PoseScheduler | None = None,
    ) -> MotionCheckResult:
        """Whole-motion check: one vectorized pass over every CDQ pair.

        The full (M, N) outcome matrix is reduced back to the scalar
        scan's report: CDQ rows are reordered into scheduler order, the
        first colliding row marks the early exit, and broad-phase test
        counts replicate the scalar per-obstacle iteration (AABB-passing
        obstacles up to and including the first narrow-phase hit).
        """
        robot = self.detector.robot
        poses = robot.interpolate(start, end, num_poses)
        order = (scheduler or NaiveScheduler()).order(num_poses)
        stats = QueryStats(motions_checked=1, poses_checked=num_poses)
        pack, pose_ids, kind = self._pack_motion(poses)
        row_order = self._row_order(pose_ids, order)
        total = len(row_order)
        outcomes, tests, broad, pruned = self._row_outcomes(pack, kind, row_order)

        if not outcomes.any():
            stats.cdqs_executed = total
            stats.narrow_phase_tests = int(tests.sum())
            stats.broad_phase_tests = int(broad.sum())
            stats.broad_phase_pruned = int(pruned.sum())
            return MotionCheckResult(collided=False, stats=stats)

        first = int(np.argmax(outcomes))
        stats.cdqs_executed = first + 1
        stats.cdqs_skipped = total - (first + 1)
        stats.motions_colliding = 1
        stats.narrow_phase_tests = int(tests[: first + 1].sum())
        stats.broad_phase_tests = int(broad[: first + 1].sum())
        stats.broad_phase_pruned = int(pruned[: first + 1].sum())
        return MotionCheckResult(
            collided=True,
            stats=stats,
            first_colliding_pose=int(pose_ids[row_order[first]]),
        )

    def check_motion_predicted(
        self,
        start: ArrayLike,
        end: ArrayLike,
        num_poses: int = 20,
        scheduler: PoseScheduler | None = None,
        predictor: Predictor | None = None,
    ) -> MotionCheckResult | None:
        """Predict-gated whole-motion check (Algorithm 1, vectorized).

        All heavy work is batched up front — FK, volume packing, the
        broad/narrow-phase outcome matrix and one
        :meth:`~repro.core.hashing.HashFunction.hash_many` pass over every
        link center (or pose vector) of the motion. What remains of
        Algorithm 1 is only its *gate*: the scheduling decisions that
        depend on intra-motion CHT updates. The gate replays over
        precomputed integer arrays:

        * phase 1 jumps straight between predicted-colliding rows
          (``np.flatnonzero`` on the batched verdict vector) instead of
          visiting every CDQ; each executed row feeds the table through
          the scalar :meth:`~repro.core.cht.CollisionHistoryTable.update`
          (preserving the exact RNG draw order), then the verdicts of
          remaining rows mapping to the written entry are refreshed in one
          masked assignment;
        * phase 2 drains the queue with a single
          :meth:`~repro.core.cht.CollisionHistoryTable.update_many` over
          the rows the scalar loop would have executed.

        Returns None when the configuration needs the scalar engine (a
        non-CHT predictor, whose ``predict`` may consume RNG per call, a
        custom key function, or a hash too wide to vectorize — see
        :attr:`~repro.core.hashing.HashFunction.vectorizable`); otherwise
        the result — codes, verdicts,
        counter states, RNG stream and every traffic statistic — is
        bit-identical to
        ``CollisionDetector.check_motion(..., predictor=predictor)``.
        """
        if not isinstance(predictor, CHTPredictor) or not predictor.hash_function.vectorizable:
            return None
        robot = self.detector.robot
        poses = robot.interpolate(start, end, num_poses)
        order = (scheduler or NaiveScheduler()).order(num_poses)
        pack, pose_ids, kind = self._pack_motion(poses)
        keys = self._row_keys(pack, pose_ids, poses)
        if keys is None:
            return None
        row_order = self._row_order(pose_ids, order)
        stats = QueryStats(motions_checked=1, poses_checked=num_poses)
        outcomes, tests, broad, pruned = self._row_outcomes(pack, kind, row_order)
        codes = np.asarray(predictor.hash_function.hash_many(keys[row_order]), dtype=np.int64)
        hit_row = self._gated_scan(
            outcomes, tests, broad, pruned, codes, predictor.table, stats
        )
        if hit_row < 0:
            return MotionCheckResult(collided=False, stats=stats)
        stats.motions_colliding = 1
        return MotionCheckResult(
            collided=True,
            stats=stats,
            first_colliding_pose=int(pose_ids[row_order[hit_row]]),
        )

    def _gated_scan(
        self,
        outcomes: np.ndarray,
        tests: np.ndarray,
        broad: np.ndarray,
        pruned: np.ndarray,
        codes: np.ndarray,
        table: "CollisionHistoryTable",
        stats: QueryStats,
    ) -> int:
        """Algorithm 1's gate over one query's precomputed row arrays.

        The sequential heart shared by :meth:`check_motion_predicted`
        (whole-motion row stream) and :meth:`check_poses` (per-pose row
        slices): replays the scalar predict/execute/observe ordering over
        batched outcome, test-count and hash-code vectors, leaving the
        table's counters, statistics and RNG stream exactly as the scalar
        loop would. Accumulates executed/skipped/test/prediction counts
        into ``stats`` and returns the row index of the early exit (-1
        when the scan completes collision-free).
        """
        total = len(codes)
        indices = codes % table.size
        preds = table.probe_many(codes)

        executed = 0
        tests_total = 0
        broad_total = 0
        pruned_total = 0
        predictions_made = total
        hit_row = -1

        # Phase 1: predicted-colliding CDQs execute eagerly in scheduler
        # order; everything the gate skips over is queued (= stays False
        # in ``preds``, which only fix-ups on not-yet-visited rows mutate).
        i = 0
        while i < total:
            ahead = np.flatnonzero(preds[i:])
            if ahead.size == 0:
                break
            j = i + int(ahead[0])
            stats.predicted_colliding += 1
            executed += 1
            collided = bool(outcomes[j])
            tests_total += int(tests[j])
            broad_total += int(broad[j])
            pruned_total += int(pruned[j])
            written = table.update(int(codes[j]), collided)
            if collided:
                predictions_made = j + 1
                hit_row = j
                break
            if written and j + 1 < total:
                # The write may flip predictions of later rows hashing to
                # the same entry; refresh them before the gate reaches them.
                same = indices[j + 1 :] == indices[j]
                if same.any():
                    preds[j + 1 :][same] = table.probe_many(codes[j : j + 1])[0]
            i = j + 1

        # Phase 2: drain the queue in order, stopping at the first hit.
        if hit_row < 0:
            queued = np.flatnonzero(~preds)
            if queued.size:
                queue_hits = outcomes[queued]
                count = int(np.argmax(queue_hits)) + 1 if queue_hits.any() else int(queued.size)
                run = queued[:count]
                table.update_many(codes[run], outcomes[run])
                executed += count
                tests_total += int(tests[run].sum())
                broad_total += int(broad[run].sum())
                pruned_total += int(pruned[run].sum())
                if queue_hits.any():
                    hit_row = int(run[-1])

        table.reads += predictions_made
        stats.predictions_made += predictions_made
        stats.cdqs_executed += executed
        stats.narrow_phase_tests += tests_total
        stats.broad_phase_tests += broad_total
        stats.broad_phase_pruned += pruned_total
        if hit_row >= 0:
            stats.cdqs_skipped += total - executed
        return hit_row

    def check_poses(
        self,
        qs: ArrayLike,
        predictor: Predictor | None = None,
    ) -> "list[MotionCheckResult] | None":
        """Batched pose-environment checks over a (P, dof) pose array.

        One FK + volume-packing + outcome-matrix pass covers every pose;
        per-pose results are then derived slice by slice (poses are
        independent queries, so rows never cross pose boundaries). Without
        a predictor the slice derivation replicates the scalar in-order
        early-exit scan of :meth:`CollisionDetector.check_pose`; with a
        CHT predictor one :meth:`~repro.core.hashing.HashFunction.hash_many`
        pass covers all rows and :meth:`_gated_scan` replays Algorithm 1's
        gate per pose slice — in submission order, so a shared table
        evolves exactly as the scalar per-pose loop would. Returns None
        when the configuration needs the scalar engine (non-CHT predictor,
        custom key function, or a hash too wide to vectorize).
        """
        robot = self.detector.robot
        poses = np.stack([robot.validate_configuration(q) for q in np.asarray(qs, dtype=float)])
        num_poses = poses.shape[0]
        cht: CHTPredictor | None = None
        if predictor is not None:
            if not isinstance(predictor, CHTPredictor) or not predictor.hash_function.vectorizable:
                return None
            cht = predictor
        pack, pose_ids, kind = self._pack_motion(poses)
        codes: np.ndarray | None = None
        table = None
        if cht is not None:
            keys = self._row_keys(pack, pose_ids, poses)
            if keys is None:
                return None
            codes = np.asarray(cht.hash_function.hash_many(keys), dtype=np.int64)
            table = cht.table
        total = len(pose_ids)
        outcomes, tests, broad, pruned = self._row_outcomes(pack, kind, np.arange(total))
        row_starts = np.searchsorted(pose_ids, np.arange(num_poses + 1))

        results: list[MotionCheckResult] = []
        for p in range(num_poses):
            lo, hi = int(row_starts[p]), int(row_starts[p + 1])
            stats = QueryStats(poses_checked=1)
            pose_outcomes = outcomes[lo:hi]
            if codes is not None and table is not None:
                hit_row = self._gated_scan(
                    pose_outcomes,
                    tests[lo:hi],
                    broad[lo:hi],
                    pruned[lo:hi],
                    codes[lo:hi],
                    table,
                    stats,
                )
                collided = hit_row >= 0
            elif pose_outcomes.any():
                first = int(np.argmax(pose_outcomes))
                stats.cdqs_executed = first + 1
                stats.cdqs_skipped = (hi - lo) - (first + 1)
                stats.narrow_phase_tests = int(tests[lo : lo + first + 1].sum())
                stats.broad_phase_tests = int(broad[lo : lo + first + 1].sum())
                stats.broad_phase_pruned = int(pruned[lo : lo + first + 1].sum())
                collided = True
            else:
                stats.cdqs_executed = hi - lo
                stats.narrow_phase_tests = int(tests[lo:hi].sum())
                stats.broad_phase_tests = int(broad[lo:hi].sum())
                stats.broad_phase_pruned = int(pruned[lo:hi].sum())
                collided = False
            results.append(
                MotionCheckResult(
                    collided=collided,
                    stats=stats,
                    first_colliding_pose=0 if collided else None,
                )
            )
        return results

    def predict_motion(
        self,
        start: ArrayLike,
        end: ArrayLike,
        num_poses: int = 20,
        scheduler: PoseScheduler | None = None,
        predictor: Predictor | None = None,
    ) -> bool | None:
        """Batched predicted-only verdict: OR of the CHT over the motion.

        The fast path behind :func:`repro.collision.pipeline.predict_motion`:
        one hash pass, one stats-free table probe, and read accounting
        that replicates the scalar generator's short-circuit (the scalar
        loop stops predicting at the first colliding verdict). No CDQ is
        executed and no table entry is written, so — unlike the gated
        check — a single batched probe is exact. Returns None when the
        configuration needs the scalar loop (non-CHT predictor, custom
        key function, or a hash too wide to vectorize).
        """
        if not isinstance(predictor, CHTPredictor) or not predictor.hash_function.vectorizable:
            return None
        robot = self.detector.robot
        poses = robot.interpolate(start, end, num_poses)
        order = (scheduler or NaiveScheduler()).order(num_poses)
        pack, pose_ids, _ = self._pack_motion(poses)
        keys = self._row_keys(pack, pose_ids, poses)
        if keys is None:
            return None
        row_order = self._row_order(pose_ids, order)
        table = predictor.table
        verdicts = table.probe_many(predictor.hash_function.hash_many(keys[row_order]))
        if verdicts.any():
            table.reads += int(np.argmax(verdicts)) + 1
            return True
        table.reads += int(verdicts.shape[0])
        return False


def check_motion_batched(
    detector: CollisionDetector,
    start: ArrayLike,
    end: ArrayLike,
    num_poses: int = 20,
    scheduler: PoseScheduler | None = None,
) -> MotionCheckResult:
    """One-shot convenience wrapper: batch-check a motion against a scene.

    Reuses the detector's cached :class:`BatchMotionKernel` (rebuilt
    automatically when the scene's obstacle list changes).
    """
    return detector.batch_kernel().check_motion(start, end, num_poses, scheduler)


# -- process-pool sharding ---------------------------------------------------

#: Per-worker state installed by :func:`_init_worker` (one copy per process).
_WORKER_STATE: dict = {}


def _init_worker(
    detector: CollisionDetector,
    scheduler: PoseScheduler | None,
    backend: str,
    seed: int,
    faults: FaultInjector | None = None,
    shared_predictor: SharedPredictorSpec | None = None,
    publish_every: int | None = None,
) -> None:
    """Process-pool initializer: detector, kernel and a fork-safe RNG.

    The RNG folds the worker's PID into the parent seed so processes
    started by ``fork`` do not inherit identical generator state — any
    stochastic scheduler or sampling hook sees an independent stream.
    ``faults`` (a picklable seeded injector) arms deterministic crash /
    slow-shard / exception faults inside this worker.

    ``shared_predictor`` arms the shared-CHT mode: the worker builds its
    own :class:`~repro.sharedcht.SegmentManager` (never aliasing the
    parent's registry through fork), attaches the shared counter banks
    and syncs a private :class:`~repro.sharedcht.WorkerCHT` — once, here,
    not per shard, which is what keeps the single-writer run bit-exact
    (the table evolves continuously across shards exactly like a private
    table would). Restarted workers re-run this initializer and re-sync,
    picking up every delta already merged by the parent.

    ``publish_every`` additionally arms *worker-direct publishing*: the
    worker keeps a live handle on the shared banks and commits its delta
    window straight into them every N motions (plus the shard-end
    residual) under the segment's cross-process publish lock, instead of
    shipping counters back through the parent. Requires a
    ``lock_mode="process"`` table; restarted workers re-attach and their
    first fenced commit rolls back any torn write the dead worker left.
    """
    _WORKER_STATE["detector"] = detector
    _WORKER_STATE["scheduler"] = scheduler
    _WORKER_STATE["backend"] = backend
    _WORKER_STATE["kernel"] = (
        BatchMotionKernel(detector) if backend == "batch" else None
    )
    _WORKER_STATE["faults"] = faults
    _WORKER_STATE["rng"] = np.random.default_rng(
        np.random.SeedSequence([int(seed), os.getpid()])
    )
    _WORKER_STATE["publish_every"] = publish_every
    _WORKER_STATE["shared_handle"] = None
    if shared_predictor is None:
        _WORKER_STATE["predictor"] = None
    elif publish_every is None:
        _WORKER_STATE["segments"] = SegmentManager()
        _WORKER_STATE["predictor"] = shared_predictor.worker_predictor(
            manager=_WORKER_STATE["segments"]
        )
    else:
        # Worker-direct mode keeps a live handle, and the private sync
        # copy is taken through *that* handle: if the previous worker
        # died mid-publish, the snapshot's lock acquisition rolls the
        # torn commit back here, so the handle's ``rollbacks`` counter
        # carries the recovery event home in the next shard payload.
        _WORKER_STATE["segments"] = SegmentManager()
        handle = SharedCHT.attach(
            shared_predictor.table, manager=_WORKER_STATE["segments"]
        )
        _WORKER_STATE["shared_handle"] = handle
        coll, noncoll = handle.counters_snapshot()
        worker = WorkerCHT(shared_predictor.table, coll, noncoll)
        _WORKER_STATE["predictor"] = CHTPredictor(shared_predictor.hash_function, worker)


def _check_one(motion: "Motion") -> tuple[bool, int | None, QueryStats]:
    """Check one motion inside a pool worker; returns a picklable triple."""
    scheduler = _WORKER_STATE["scheduler"]
    predictor = _WORKER_STATE.get("predictor")
    if _WORKER_STATE["backend"] == "batch":
        kernel = _WORKER_STATE["kernel"]
        if predictor is not None:
            result = kernel.check_motion_predicted(
                motion.start, motion.end, motion.num_poses, scheduler, predictor
            )
            if result is None:
                # Configuration the gated kernel cannot vectorize (custom
                # key function, wide hash): exact scalar engine instead.
                result = _WORKER_STATE["detector"].check_motion(
                    motion.start, motion.end, motion.num_poses, scheduler, predictor
                )
        else:
            result = kernel.check_motion(
                motion.start, motion.end, motion.num_poses, scheduler
            )
    else:
        result = _WORKER_STATE["detector"].check_motion(
            motion.start, motion.end, motion.num_poses, scheduler, predictor
        )
    return result.collided, result.first_colliding_pose, result.stats


def _publish_window(shard_index: int, attempt: int) -> CHTDeltas:
    """Commit the worker's current delta window straight into shared banks.

    The ``publish_every`` hot half: an epoch-fenced, process-locked
    :meth:`~repro.sharedcht.WorkerCHT.publish_to` commit. The armed
    ``kill_mid_publish`` fault fires here — the worker opens a fence,
    scribbles half the counters and SIGKILLs itself *while holding the
    publish lock*, which is exactly the crash the flock + backup-bank
    rollback design exists to survive.
    """
    faults = _WORKER_STATE.get("faults")
    handle = _WORKER_STATE["shared_handle"]
    predictor = _WORKER_STATE["predictor"]
    if faults is not None and faults.poll("kill_mid_publish", shard_index, attempt) is not None:
        inject_torn_commit(handle, kill=True)  # never returns
    return predictor.table.publish_to(handle)


def _check_shard(
    shard_index: int, attempt: int, motions: "list[Motion]"
) -> tuple[list[tuple[bool, int | None, QueryStats]], CHTDeltas | None]:
    """Check one shard's motions inside a pool worker.

    Armed faults fire first (deterministically, keyed by shard index and
    attempt number), so a crash/slow/exception fault hits the shard before
    any motion result is produced — a retried shard re-checks every motion
    and the assembled workload stays bit-identical to a clean run. A
    ``torn_write`` fault opens an epoch fence on the shared banks and
    abandons it (partial counters, odd epoch); the next fenced commit —
    here or in any other process — must roll it back exactly.

    In shared-predictor mode the worker's delta watermark resets *before*
    the shard runs, so the returned :class:`~repro.sharedcht.CHTDeltas`
    payload carries exactly this attempt's table updates — a previous
    failed attempt's partial writes are absorbed into the watermark and
    never published. With ``publish_every`` set the worker instead commits
    its window directly every N motions plus the shard-end residual, and
    the payload degrades to traffic-only accounting
    (:meth:`CHTDeltas.combine_traffic`).
    """
    faults = _WORKER_STATE.get("faults")
    predictor = _WORKER_STATE.get("predictor")
    handle = _WORKER_STATE.get("shared_handle")
    publish_every = _WORKER_STATE.get("publish_every")
    if predictor is not None:
        predictor.table.reset_watermark()
    if faults is not None:
        faults.fire("crash", shard_index, attempt)
        faults.fire("slow", shard_index, attempt)
        faults.fire("exception", shard_index, attempt)
        if handle is not None and faults.poll("torn_write", shard_index, attempt) is not None:
            inject_torn_commit(handle)
    if predictor is None:
        return [_check_one(motion) for motion in motions], None
    if handle is None:
        triples = [_check_one(motion) for motion in motions]
        return triples, predictor.table.take_deltas()
    # Worker-direct publishing: commit a window every ``publish_every``
    # motions, then the residual at shard end. One publish minimum per
    # shard, so the parent still observes per-shard traffic accounting.
    triples = []
    windows: list[CHTDeltas] = []
    since = 0
    for motion in motions:
        triples.append(_check_one(motion))
        since += 1
        if since >= publish_every:
            windows.append(_publish_window(shard_index, attempt))
            since = 0
    windows.append(_publish_window(shard_index, attempt))
    payload = CHTDeltas.combine_traffic(windows)
    # Report the handle's *cumulative* recoveries (drained per shard):
    # this also covers a torn commit rolled back during this worker's
    # init-time sync, which no publish window observed.
    drained, handle.rollbacks = handle.rollbacks, 0
    return triples, dataclasses.replace(payload, rollbacks=drained)


def check_motions_sharded(
    detector: CollisionDetector,
    motions: "list[Motion]",
    scheduler: PoseScheduler | None = None,
    *,
    backend: str = "batch",
    max_workers: int | None = None,
    chunksize: int | None = None,
    seed: int = 0,
    label: str = "sharded",
    retry: RetryPolicy | None = None,
    shard_timeout_s: float | None = None,
    faults: FaultInjector | None = None,
    counters: "ResilienceCounters | None" = None,
    shared_predictor: "SharedPredictorSpec | CHTPredictor | None" = None,
    publish_every: int | None = None,
) -> "BatchResult":
    """Shard a motion workload over a supervised ``ProcessPoolExecutor``.

    Every worker receives the detector once (pool initializer), then
    motions are submitted as ``chunksize``-motion shards — the classic
    throughput tuning knob: large shards amortize IPC, small shards
    balance uneven motion costs. The default targets ~4 shards per
    worker. Results are assembled in shard order, so the returned
    :class:`~repro.collision.pipeline.BatchResult` is independent of
    worker scheduling *and* of any retries.

    Failure handling is always on: a worker exception, a crashed worker
    (``BrokenProcessPool``) or — when ``shard_timeout_s`` is set — a hung
    round breaks only the affected shards, which are resubmitted to a
    restarted pool under ``retry`` (default: 3 retries, jittered
    exponential backoff; see :class:`repro.resilience.RetryPolicy`).
    ``faults`` arms the deterministic in-worker fault injector and
    ``counters`` (a :class:`repro.core.metrics.ResilienceCounters`)
    receives ``shard_retries`` / ``shard_timeouts`` / ``pool_restarts``.

    ``shared_predictor`` turns the predictor-free fan-out into a
    *shared-table* run (:mod:`repro.sharedcht`): pass either a
    :class:`~repro.sharedcht.SharedPredictorSpec` or a
    :class:`~repro.core.predictor.CHTPredictor` whose table is a
    :class:`~repro.sharedcht.SharedCHT`. Workers sync a private copy of
    the shared counter banks at start, run Algorithm 1's predict-gated
    kernel against it, and return per-shard delta payloads; the parent
    commits them into the shared banks *in shard-index order* via the
    saturating :meth:`~repro.core.cht.CollisionHistoryTable.merge_counts`
    primitive (merge-on-join). Verdicts and first-colliding poses are
    always exact — prediction only reorders and prunes CDQs — and with
    ``max_workers=1`` the whole run (counters, traffic statistics, RNG
    stream) is bit-identical to checking the motions sequentially against
    a private table. Multi-worker runs trade that for throughput:
    counters converge through the order-invariant saturating merge, while
    per-motion CDQ statistics become schedule-dependent.

    ``publish_every`` (shared-predictor mode only, table created with
    ``lock_mode="process"``) switches to *worker-direct publishing*: each
    worker commits its delta window straight into the shared banks every
    N motions plus a shard-end residual, under the segment's epoch-fenced
    cross-process publish lock. Long shards stop hoarding observations —
    other workers' next sync sees them mid-run — and the parent merge
    loop degrades to traffic accounting. Single-writer runs stay
    bit-exact: the publishes telescope (``min(B + (F - B), max) = F``),
    landing the banks exactly where merge-on-join would.
    """
    from .pipeline import BatchResult

    if backend not in ("scalar", "batch"):
        raise ValueError(f"backend must be 'scalar' or 'batch', got {backend!r}")
    spec: SharedPredictorSpec | None = None
    shared_table: SharedCHT | None = None
    if shared_predictor is not None:
        if isinstance(shared_predictor, CHTPredictor):
            table = shared_predictor.table
            if not isinstance(table, SharedCHT):
                raise TypeError(
                    "shared_predictor's table must be a SharedCHT "
                    f"(got {type(table).__name__}); build one with SharedCHT.create()"
                )
            shared_table = table
            spec = SharedPredictorSpec.for_table(table, shared_predictor.hash_function)
        else:
            spec = shared_predictor
            shared_table = SharedCHT.attach(spec.table)
    if publish_every is not None:
        if publish_every < 1:
            raise ValueError(f"publish_every must be >= 1, got {publish_every!r}")
        if spec is None:
            raise ValueError("publish_every requires a shared_predictor")
        if spec.table.lock_mode != "process":
            raise ValueError(
                "publish_every commits from worker processes, which needs the "
                "cross-process publish lock: create the shared table with "
                f"lock_mode='process' (got {spec.table.lock_mode!r})"
            )
    result = BatchResult(label=label)
    if not motions:
        return result
    if max_workers is None:
        max_workers = max(1, min(os.cpu_count() or 1, 8, len(motions)))
    if chunksize is None:
        chunksize = max(1, math.ceil(len(motions) / (max_workers * 4)))
    shards = {
        index: motions[offset : offset + chunksize]
        for index, offset in enumerate(range(0, len(motions), chunksize))
    }

    def pool_factory() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(detector, scheduler, backend, seed, faults, spec, publish_every),
        )

    supervisor = SupervisedPool(
        pool_factory,
        retry=retry,
        shard_timeout_s=shard_timeout_s,
        counters=counters,
    )
    shard_results = supervisor.run(_check_shard, shards)
    for index in range(len(shards)):
        triples, deltas = shard_results[index]
        for collided, first_pose, stats in triples:
            result.stats.merge(stats)
            result.outcomes.append(collided)
            result.first_colliding_poses.append(first_pose)
        if deltas is not None and shared_table is not None:
            # Merge-on-join: commit each shard's increments in shard-index
            # order (deterministic, and bit-exact for a single writer).
            # Worker-published shards carry traffic/recovery only.
            deltas.publish(shared_table)
            if counters is not None and deltas.rollbacks:
                counters.count("torn_commits_rolled_back", deltas.rollbacks)
    return result
