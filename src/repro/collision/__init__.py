"""Collision detection: CDQs, schedulers, Algorithm 1, parallel models."""

from .batch_pipeline import BatchMotionKernel, check_motion_batched, check_motions_sharded
from .continuous import ContinuousCheckResult, ContinuousMotionChecker, link_clearance_gaps
from .continuous_batch import BatchContinuousKernel
from .detector import CollisionDetector, coord_key, pose_key
from .parallel import ParallelCostModel, ParallelRunResult, run_parallel_batch
from .pipeline import (
    BACKENDS,
    BatchResult,
    Motion,
    check_continuous_batch,
    check_motion,
    check_motion_batch,
    check_pose_batch,
    check_pose_many,
    compare_schedulers,
    get_default_backend,
    predict_motion,
    predict_pose,
    set_default_backend,
)
from .queries import CDQ, MotionCheckResult, QueryStats
from .scheduling import BisectionScheduler, CoarseStepScheduler, NaiveScheduler, PoseScheduler

__all__ = [
    "BACKENDS",
    "BatchMotionKernel",
    "check_motion_batched",
    "check_motions_sharded",
    "get_default_backend",
    "set_default_backend",
    "BatchContinuousKernel",
    "ContinuousCheckResult",
    "ContinuousMotionChecker",
    "link_clearance_gaps",
    "CollisionDetector",
    "coord_key",
    "pose_key",
    "ParallelCostModel",
    "ParallelRunResult",
    "run_parallel_batch",
    "BatchResult",
    "Motion",
    "check_motion",
    "check_motion_batch",
    "check_pose_batch",
    "check_pose_many",
    "check_continuous_batch",
    "compare_schedulers",
    "predict_motion",
    "predict_pose",
    "CDQ",
    "MotionCheckResult",
    "QueryStats",
    "BisectionScheduler",
    "CoarseStepScheduler",
    "NaiveScheduler",
    "PoseScheduler",
]
