"""Collision detection: CDQs, schedulers, Algorithm 1, parallel models."""

from .continuous import ContinuousCheckResult, ContinuousMotionChecker
from .detector import CollisionDetector, coord_key, pose_key
from .parallel import ParallelCostModel, ParallelRunResult, run_parallel_batch
from .pipeline import (
    BatchResult,
    Motion,
    check_motion,
    check_motion_batch,
    compare_schedulers,
    predict_motion,
)
from .queries import CDQ, MotionCheckResult, QueryStats
from .scheduling import BisectionScheduler, CoarseStepScheduler, NaiveScheduler, PoseScheduler

__all__ = [
    "ContinuousCheckResult",
    "ContinuousMotionChecker",
    "CollisionDetector",
    "coord_key",
    "pose_key",
    "ParallelCostModel",
    "ParallelRunResult",
    "run_parallel_batch",
    "BatchResult",
    "Motion",
    "check_motion",
    "check_motion_batch",
    "compare_schedulers",
    "predict_motion",
    "CDQ",
    "MotionCheckResult",
    "QueryStats",
    "BisectionScheduler",
    "CoarseStepScheduler",
    "NaiveScheduler",
    "PoseScheduler",
]
