"""Worker-side shared-CHT protocol: sync once, batch deltas, merge on join.

Pool workers must not chat with the shared counter banks per CDQ — that
would serialize every lane on one lock and destroy the point of sharding.
Instead each worker runs the *eventual-commit* protocol:

1. **sync** — at worker start, snapshot the shared counters into a
   private :class:`WorkerCHT` (one read of the whole table);
2. **batch** — run the normal predict/update path against the private
   copy, exactly as fast as a per-process table;
3. **publish** — ship the *increments* since the last watermark
   (:meth:`WorkerCHT.take_deltas`) back to the parent, which commits them
   with the saturating
   :meth:`~repro.core.cht.CollisionHistoryTable.merge_counts` primitive.

Because the saturating bincount commit is associative and commutative up
to saturation, delta batches from many workers can merge in any order
and converge to the same counters. With a single writer the protocol is
*bit-exact*: the worker synced from base ``B`` and finished at ``F``, so
its deltas are ``F - B`` and ``min(B + (F - B), max) = F`` — the shared
table lands exactly where a private run would have.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cht import CollisionHistoryTable
from ..core.hashing import HashFunction
from ..core.predictor import CHTPredictor
from .segments import SegmentManager
from .table import SharedCHT, SharedCHTSpec

__all__ = ["CHTDeltas", "WorkerCHT", "SharedPredictorSpec"]


@dataclass(frozen=True)
class CHTDeltas:
    """One worker's increments since its last watermark — the merge payload.

    ``coll``/``noncoll`` are (size,) raw per-entry increment counts (the
    exact shape :meth:`~repro.core.cht.CollisionHistoryTable.merge_counts`
    consumes); the traffic fields carry the worker's CHT access statistics
    over the same window so the parent can account total table traffic.
    Plain ndarrays and ints, hence picklable across the pool boundary.
    """

    coll: "np.ndarray"
    noncoll: "np.ndarray"
    reads: int = 0
    writes: int = 0
    skipped_updates: int = 0
    #: Torn commits rolled back while publishing this window (crash
    #: recovery events observed worker-side; folded into the parent
    #: handle's ``rollbacks`` so run-level accounting survives the pool).
    rollbacks: int = 0
    #: True when the counters were already committed by the worker (the
    #: ``publish_every`` mid-run path): :meth:`publish` then carries only
    #: traffic statistics back to the parent handle.
    published: bool = False

    def publish(self, shared: SharedCHT) -> None:
        """Commit this payload into a shared table (counters and traffic)."""
        if not self.published:
            shared.merge_counts(self.coll, self.noncoll)
        shared.reads += int(self.reads)
        shared.writes += int(self.writes)
        shared.skipped_updates += int(self.skipped_updates)
        shared.rollbacks += int(self.rollbacks)

    def is_empty(self) -> bool:
        """True when the window saw no table traffic at all."""
        return (
            self.reads == 0
            and self.writes == 0
            and self.skipped_updates == 0
            and self.rollbacks == 0
            and not self.coll.any()
            and not self.noncoll.any()
        )

    @classmethod
    def combine_traffic(cls, windows: "list[CHTDeltas]") -> "CHTDeltas":
        """Fold already-published windows into one traffic-only payload.

        Used by the ``publish_every`` worker path: each window's counters
        went straight into the shared banks under the process lock, so
        the shard's return payload carries only the summed traffic (and
        recovery) statistics for the parent to account.
        """
        empty = np.zeros(0, dtype=np.int64)
        return cls(
            coll=empty,
            noncoll=empty,
            reads=sum(window.reads for window in windows),
            writes=sum(window.writes for window in windows),
            skipped_updates=sum(window.skipped_updates for window in windows),
            rollbacks=sum(window.rollbacks for window in windows),
            published=True,
        )


class WorkerCHT(CollisionHistoryTable):
    """A private CHT seeded from a shared table, with delta extraction.

    Behaves exactly like :class:`~repro.core.cht.CollisionHistoryTable`
    (it *is* one) so the predict-gated batch kernel and scalar Algorithm 1
    run unchanged. The additions are the watermark — a snapshot of the
    counters and traffic stats at the last :meth:`take_deltas` — and the
    delta extraction itself.
    """

    def __init__(
        self,
        spec: SharedCHTSpec,
        coll_base: "np.ndarray",
        noncoll_base: "np.ndarray",
        *,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        super().__init__(
            size=spec.size, s=spec.s, u=spec.u, rng=rng, counter_bits=spec.counter_bits
        )
        self.spec = spec
        self.coll[:] = coll_base
        self.noncoll[:] = noncoll_base
        self._mark_coll = self.coll.copy()
        self._mark_noncoll = self.noncoll.copy()
        self._mark_reads = 0
        self._mark_writes = 0
        self._mark_skipped = 0

    @classmethod
    def attach(
        cls,
        spec: SharedCHTSpec,
        *,
        manager: SegmentManager | None = None,
        rng: "np.random.Generator | None" = None,
    ) -> "WorkerCHT":
        """Sync step: attach the segment, snapshot counters, go private.

        The returned table holds no live views over the segment — workers
        only pin the mapping long enough to copy the counters out, so the
        owner can unlink at any time without racing worker reads.
        """
        shared = SharedCHT.attach(spec, manager=manager)
        coll, noncoll = shared.counters_snapshot()
        shared.detach()
        return cls(spec, coll, noncoll, rng=rng)

    def reset_watermark(self) -> None:
        """Start a fresh delta window at the current counter/traffic state.

        Called at shard start so a retried shard's payload contains only
        the *successful* attempt's updates — a crashed attempt's partial
        local writes are absorbed into the watermark, never published.
        """
        np.copyto(self._mark_coll, self.coll)
        np.copyto(self._mark_noncoll, self.noncoll)
        self._mark_reads = self.reads
        self._mark_writes = self.writes
        self._mark_skipped = self.skipped_updates

    def take_deltas(self) -> CHTDeltas:
        """Extract increments since the watermark and advance the watermark.

        Saturated entries undercount (a counter pinned at ``counter_max``
        reports delta 0 however many hits it absorbed) — exactly the loss
        a sequential saturating run would also have, which is why the
        single-writer merge stays bit-exact.
        """
        deltas = CHTDeltas(
            coll=(self.coll - self._mark_coll).astype(np.int64),
            noncoll=(self.noncoll - self._mark_noncoll).astype(np.int64),
            reads=self.reads - self._mark_reads,
            writes=self.writes - self._mark_writes,
            skipped_updates=self.skipped_updates - self._mark_skipped,
        )
        self.reset_watermark()
        return deltas

    def publish_to(self, shared: SharedCHT) -> CHTDeltas:
        """Mid-run delta publish: commit the current window directly.

        The ``publish_every`` path (periodic publishes every N motions,
        so long shards stop hoarding observations): counters merge into
        the shared banks *here*, under the table's publish lock — an
        epoch-fenced commit, so a crash mid-merge is rolled back exactly
        by the next lock holder — while the window's traffic statistics
        ride back in the returned ``published=True`` payload for the
        parent handle to account (per-handle accounting stays with the
        driver, same as the merge-on-join protocol).
        """
        deltas = self.take_deltas()
        rollbacks_before = shared.rollbacks
        if deltas.coll.any() or deltas.noncoll.any():
            shared.merge_counts(deltas.coll, deltas.noncoll)
        empty = np.zeros(0, dtype=np.int64)
        return CHTDeltas(
            coll=empty,
            noncoll=empty,
            reads=deltas.reads,
            writes=deltas.writes,
            skipped_updates=deltas.skipped_updates,
            rollbacks=shared.rollbacks - rollbacks_before,
            published=True,
        )


@dataclass(frozen=True)
class SharedPredictorSpec:
    """Picklable recipe for a shared-table COORD/POSE predictor.

    Carries the segment spec plus the hash function (hash functions are
    small parameter objects and pickle cleanly), so the sharded driver can
    pass one through pool initializer args and have every worker build an
    identically-configured predictor over the same counter banks.
    """

    table: SharedCHTSpec
    hash_function: HashFunction

    def worker_predictor(
        self,
        *,
        manager: SegmentManager | None = None,
        rng: "np.random.Generator | None" = None,
    ) -> CHTPredictor:
        """Build a worker-local predictor synced from the shared banks."""
        worker = WorkerCHT.attach(self.table, manager=manager, rng=rng)
        return CHTPredictor(self.hash_function, worker)

    @classmethod
    def for_table(cls, shared: SharedCHT, hash_function: HashFunction) -> "SharedPredictorSpec":
        """Describe an existing shared table + hash pairing."""
        return cls(table=shared.spec, hash_function=hash_function)
