"""Shared-memory segment lifecycle: create, attach, unlink — never leak.

``multiprocessing.shared_memory`` segments are named kernel objects that
outlive the process that created them; a crashed run that skipped
``unlink()`` leaves them pinned in ``/dev/shm`` forever. Worse, on
CPython < 3.13 *attaching* to a segment also registers it with the
process's ``resource_tracker``, so a pool worker that merely read a
shared table will, at exit, unlink the segment out from under its owner
(bpo-38119). Every segment in this repo therefore goes through a
:class:`SegmentManager` (reprolint rule F002 enforces it):

* :meth:`SegmentManager.create` registers the segment as *owned* — it is
  unlinked by :meth:`unlink`/:meth:`shutdown`, or by the module's atexit
  hook if the run dies first;
* :meth:`SegmentManager.attach` immediately unregisters the mapping from
  the resource tracker, so attachers (pool workers, the serving layer's
  telemetry readers) never trigger a premature unlink;
* :meth:`SegmentManager.shutdown` unlinks every owned name; the
  *mappings* are retired, not unmapped, because numpy does not register
  a buffer export on ``SharedMemory.buf`` — ``close()`` under a live
  counter view unmaps silently and the next table access segfaults, so
  the manager defers every munmap to process exit (the OS reclaims it).

Unlinking an owned segment only removes its *name*; existing mappings
(numpy counter views in other processes) stay valid until closed, which
is exactly the POSIX semantics the merge-on-join pool path relies on.
"""

from __future__ import annotations

import atexit
import secrets
import time

from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

from .durability import SegmentMissingError

if TYPE_CHECKING:
    from ..resilience.supervisor import RetryPolicy

__all__ = ["SegmentManager", "default_manager"]

#: Default attach retry: two short seeded-jitter backoffs. Attach races
#: are sub-millisecond (a sibling just created the segment, the parent is
#: between create and publish), so the budget is tiny — a genuinely
#: missing segment still fails in ~15 ms, now as a typed
#: :class:`~repro.sharedcht.durability.SegmentMissingError`.
_ATTACH_RETRY_DEFAULTS = {"max_retries": 2, "base_delay_s": 0.005, "max_delay_s": 0.05}

#: Prefix of every segment name this repo allocates (greppable in /dev/shm).
SEGMENT_PREFIX = "repro-cht-"


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop a mapping from this process's resource tracker, if registered.

    On CPython < 3.13 ``SharedMemory(name=...)`` registers even plain
    attachments, and the tracker unlinks everything still registered when
    the process exits — destroying segments this process never owned.
    """
    try:
        resource_tracker.unregister(getattr(segment, "_name", segment.name), "shared_memory")
    except (KeyError, ValueError):
        # Never registered (future CPython with track=False semantics).
        pass


class SegmentManager:
    """Registry of shared-memory segments with guaranteed unlink.

    Tracks two kinds of mapping: *owned* segments this manager created
    (and must unlink) and *attached* segments it only mapped (and must
    merely close). Usable as a context manager; :func:`default_manager`
    provides a process-wide instance with an atexit safety net for code
    paths that cannot scope a ``with`` block (CLI runs, pool workers).
    """

    def __init__(self) -> None:
        self._owned: dict[str, shared_memory.SharedMemory] = {}
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        #: Retired-but-still-mapped segments. References are kept on
        #: purpose: ``SharedMemory.__del__`` would otherwise unmap under
        #: live numpy views (numpy takes the raw pointer from ``buf``
        #: without holding a buffer export, so nothing stops the munmap
        #: and the next counter access is a segfault). The OS reclaims
        #: these mappings at process exit.
        self._retired: list[shared_memory.SharedMemory] = []

    # -- lifecycle ---------------------------------------------------------

    def create(self, nbytes: int, name: str | None = None) -> shared_memory.SharedMemory:
        """Create (and own) a fresh zeroed segment of ``nbytes`` bytes."""
        if nbytes < 1:
            raise ValueError("segment size must be positive")
        if name is None:
            name = SEGMENT_PREFIX + secrets.token_hex(6)
        if name in self._owned or name in self._attached:
            raise ValueError(f"segment {name!r} already managed")
        segment = shared_memory.SharedMemory(  # reprolint: disable=F002 -- this IS the lifecycle manager; the segment is registered in _owned and unlinked by shutdown()/atexit
            name=name, create=True, size=int(nbytes)
        )
        self._owned[name] = segment
        return segment

    def attach(
        self, name: str, *, retry: "RetryPolicy | None" = None
    ) -> shared_memory.SharedMemory:
        """Map an existing segment without taking ownership of its name.

        Attaching races with creation and unlink: a worker can hold a
        spec whose segment the parent is still a few instructions away
        from publishing. Transient misses are absorbed by a bounded
        seeded-jitter retry (``retry`` defaults to a tiny two-attempt
        :class:`~repro.resilience.RetryPolicy` budget); a segment that
        stays missing raises a typed
        :class:`~repro.sharedcht.durability.SegmentMissingError` carrying
        the segment name (a :class:`FileNotFoundError` subclass, so
        legacy handlers keep working).
        """
        cached = self._attached.get(name) or self._owned.get(name)
        if cached is not None:
            return cached
        if retry is None:
            from ..resilience.supervisor import RetryPolicy

            retry = RetryPolicy(**_ATTACH_RETRY_DEFAULTS)
        attempt = 0
        while True:
            try:
                segment = shared_memory.SharedMemory(  # reprolint: disable=F002 -- manager attach path; immediately unregistered from the resource tracker so this process never unlinks a segment it does not own
                    name=name
                )
                break
            except FileNotFoundError as error:
                if attempt >= retry.max_retries:
                    raise SegmentMissingError(name) from error
                time.sleep(retry.delay_s(attempt))
                attempt += 1
        _untrack(segment)
        self._attached[name] = segment
        return segment

    def close(self, name: str) -> None:
        """Retire an attached mapping; the name (and the pages) live on.

        Deliberately does *not* call ``SharedMemory.close()``: numpy views
        over the buffer hold no buffer export, so an eager munmap would
        pull the pages out from under any still-live counter view and turn
        the next access into a segfault. The mapping is parked in
        ``_retired`` (keeping the object alive past ``__del__``) and the
        OS unmaps it at process exit.

        Ownership is sticky: retiring an *owned* name is a no-op, so a
        handle detaching its views can never strip the manager of its
        duty (and ability) to unlink the segment later.
        """
        if name in self._owned:
            return
        segment = self._attached.pop(name, None)
        if segment is None:
            return
        self._retired.append(segment)

    def unlink(self, name: str) -> None:
        """Remove an owned segment's name (mappings stay valid) and retire it.

        Idempotent: unlinking a name that is gone (already unlinked, or
        never owned here) is a no-op, so crash-cleanup paths can call it
        unconditionally.
        """
        segment = self._owned.pop(name, None)
        if segment is None:
            return
        # Forked workers share this process's resource tracker, and their
        # attach-time _untrack may have removed our registration; re-add
        # it so the unregister inside SharedMemory.unlink() stays balanced
        # (an unmatched unregister makes the tracker print a KeyError).
        resource_tracker.register(getattr(segment, "_name", name), "shared_memory")
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        self._retired.append(segment)

    def shutdown(self) -> None:
        """Unlink every owned segment and close every mapping."""
        for name in list(self._owned):
            self.unlink(name)
        for name in list(self._attached):
            self.close(name)

    # -- introspection -----------------------------------------------------

    @property
    def owned_names(self) -> tuple[str, ...]:
        """Names of segments this manager created and still owns."""
        return tuple(self._owned)

    @property
    def attached_names(self) -> tuple[str, ...]:
        """Names of segments this manager only mapped."""
        return tuple(self._attached)

    def owns(self, name: str) -> bool:
        """True while ``name`` is an owned (not-yet-unlinked) segment."""
        return name in self._owned

    def __enter__(self) -> "SegmentManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


_DEFAULT_MANAGER = SegmentManager()


def default_manager() -> SegmentManager:
    """The process-wide manager (atexit-guarded; one per process).

    Forked pool workers inherit the parent's instance but their copies
    diverge immediately; workers should build their own manager so their
    attachments never alias the parent's registry.
    """
    return _DEFAULT_MANAGER


atexit.register(_DEFAULT_MANAGER.shutdown)
