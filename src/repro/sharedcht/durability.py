"""Crash-consistent durability for shared CHT segments.

A shared counter bank is only as trustworthy as its worst crash: a
publisher SIGKILLed halfway through a saturating merge leaves the bank
*torn* — some entries carry the new increments, some the old — and every
later reader silently predicts from a state no sequential run could ever
have produced. This module gives each segment the machinery to make that
impossible:

* **Versioned header** (:class:`SegmentHeader`, the first
  :data:`HEADER_NBYTES` bytes of every segment): magic, layout version
  and a spec fingerprint reject foreign or mis-specified segments at
  attach time; a seqlock-style **epoch counter** is bumped to odd when a
  commit starts and back to even when it ends, so an odd epoch observed
  under the publish lock *proves* the previous writer died mid-commit; a
  CRC-32 **counter-bank checksum**, refreshed at every commit, catches
  scribbled or bit-rotted banks that a clean epoch would otherwise hide.
* **Rollback journal**: the segment carries a backup copy of both
  counter columns, written *before* the epoch goes odd. Recovery from a
  torn commit is therefore exact — restore the backup, bump the epoch
  even — and a retried publisher re-merges its full delta window against
  precisely the state the dead attempt started from, which is what keeps
  crash-recovery runs bit-identical to fault-free ones.
* **Cross-process publish lock** (:class:`ProcessSegmentLock`): an
  ``flock`` over the segment's ``/dev/shm`` entry. A plain
  ``multiprocessing.Lock`` would deadlock the whole fleet the moment a
  lock-holding publisher is SIGKILLed (nothing ever releases it); the
  kernel releases an ``flock`` when its holder dies, which is exactly
  the crash the epoch fence is built to survive. The lock is
  reconstructible from the segment name alone, so it needs no shared
  state of its own and pickles across pool boundaries for free.
* **Snapshots** (:func:`write_snapshot` / :func:`read_snapshot`):
  checksum-stamped ``.npz`` files written via temp-file + ``os.replace``
  so a crash mid-save can never leave a half-written snapshot under the
  final name — the warm-restart path (``repro serve --restore-cht``)
  either reads a bank that validates or falls back to a cold one.

Layout of a segment (all little-endian, cells are ``int32``)::

    [ header 64B | coll | noncoll | backup_coll | backup_noncoll ]

The chaos helpers at the bottom (:func:`inject_torn_commit`,
:func:`inject_counter_corruption`) are the deterministic fault-injection
side of the same coin: they manufacture exactly the torn/corrupt states
the fence must detect, for the ``torn_write`` / ``corrupt_segment`` /
``kill_mid_publish`` fault kinds.
"""

from __future__ import annotations

import fcntl
import json
import os
import signal
import threading
import zlib

from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from .table import SharedCHT, SharedCHTSpec

__all__ = [
    "LAYOUT_VERSION",
    "HEADER_NBYTES",
    "LOCK_MODES",
    "SegmentCorruptionError",
    "SegmentMissingError",
    "SegmentHeader",
    "ProcessSegmentLock",
    "publish_lock",
    "spec_fingerprint",
    "counters_checksum",
    "write_snapshot",
    "read_snapshot",
    "inject_torn_commit",
    "inject_counter_corruption",
]

#: First 8 bytes of every repro CHT segment.
MAGIC = int.from_bytes(b"REPROCHT", "little")

#: Bump on any change to the header or bank layout; attachers refuse
#: segments written by a different layout.
LAYOUT_VERSION = 1

#: Reserved size of the segment header (fixed so the layout can grow
#: fields without moving the counter banks).
HEADER_NBYTES = 64

#: Supported publish-lock modes: ``thread`` (single-process publishers,
#: the serving layer) and ``process`` (concurrent multi-parent/worker
#: publishes through the crash-robust flock).
LOCK_MODES = ("thread", "process")

#: Where the kernel materializes POSIX shared memory on Linux.
_SHM_DIR = Path("/dev/shm")

HEADER_DTYPE = np.dtype(
    [
        ("magic", "<u8"),
        ("version", "<u4"),
        ("flags", "<u4"),
        ("spec_hash", "<u8"),
        ("epoch", "<u8"),
        ("checksum", "<u8"),
        ("reserved", "V24"),
    ]
)

#: Snapshot file format version (independent of the segment layout).
SNAPSHOT_VERSION = 1

_SNAPSHOT_FORMAT = "repro-cht-snapshot"


class SegmentCorruptionError(RuntimeError):
    """A shared segment (or snapshot) failed fence/checksum validation.

    Raised by attach-time structure checks, :meth:`SharedCHT.verify` and
    the snapshot reader. Carries the segment name (or snapshot path) so
    quarantine paths can name what they are quarantining.
    """

    def __init__(self, segment: str, message: str) -> None:
        super().__init__(f"segment {segment!r}: {message}")
        self.segment = segment


class SegmentMissingError(FileNotFoundError):
    """A named segment does not exist (unlinked, or never created).

    Subclasses :class:`FileNotFoundError` so callers catching the raw
    OS error keep working; adds the segment name for typed handling.
    """

    def __init__(self, segment: str) -> None:
        super().__init__(f"shared segment {segment!r} does not exist")
        self.segment = segment


def spec_fingerprint(spec: "SharedCHTSpec") -> int:
    """Stable hash of a spec's layout-relevant fields (not its name).

    Two handles may only share a segment if they agree on the table
    geometry and behaviour; the fingerprint lives in the header so a
    mismatched attach fails loudly instead of reading garbage.
    """
    token = f"{spec.size}:{spec.counter_bits}:{spec.s!r}:{spec.u!r}:{spec.lock_mode}"
    return zlib.crc32(token.encode("utf-8"))


def counters_checksum(coll: "np.ndarray", noncoll: "np.ndarray") -> int:
    """CRC-32 over both counter columns (the header's ``checksum`` field)."""
    return zlib.crc32(np.ascontiguousarray(noncoll).tobytes(),
                      zlib.crc32(np.ascontiguousarray(coll).tobytes()))


class SegmentHeader:
    """View over the first :data:`HEADER_NBYTES` bytes of a segment.

    All mutation happens with the segment's publish lock held; the epoch
    field is the seqlock (even = stable, odd = commit in flight) and the
    checksum covers the *live* counter columns only (the backup columns
    are journal state, validated implicitly by the rollback protocol).
    """

    def __init__(self, buffer: Any) -> None:
        self._fields = np.ndarray((), dtype=HEADER_DTYPE, buffer=buffer)

    # -- field views -------------------------------------------------------

    @property
    def epoch(self) -> int:
        return int(self._fields["epoch"])

    @property
    def checksum(self) -> int:
        return int(self._fields["checksum"])

    @property
    def spec_hash(self) -> int:
        return int(self._fields["spec_hash"])

    @property
    def torn(self) -> bool:
        """True when a commit started and never finished (odd epoch)."""
        return self.epoch % 2 == 1

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, spec_hash: int, checksum: int) -> None:
        """Stamp a fresh (owner-created, zeroed) segment."""
        self._fields["magic"] = MAGIC
        self._fields["version"] = LAYOUT_VERSION
        self._fields["flags"] = 0
        self._fields["spec_hash"] = spec_hash
        self._fields["epoch"] = 0
        self._fields["checksum"] = checksum

    def validate_structure(self, expected_hash: int, name: str) -> None:
        """Attach-time checks that need no lock: magic, version, spec.

        Deliberately does *not* look at the epoch or checksum — a
        concurrent writer may legitimately be mid-commit; torn/corrupt
        detection happens under the lock in :meth:`SharedCHT.verify`.
        """
        magic = int(self._fields["magic"])
        if magic != MAGIC:
            raise SegmentCorruptionError(
                name, f"bad magic {magic:#018x} (expected {MAGIC:#018x}) — "
                "not a repro CHT segment, or its header was overwritten"
            )
        version = int(self._fields["version"])
        if version != LAYOUT_VERSION:
            raise SegmentCorruptionError(
                name, f"layout version {version} (this build reads {LAYOUT_VERSION})"
            )
        if self.spec_hash != expected_hash:
            raise SegmentCorruptionError(
                name, "spec fingerprint mismatch — the segment was created with "
                "different table geometry (size/counter_bits/s/u/lock_mode)"
            )

    # -- commit fence ------------------------------------------------------

    def begin_commit(self) -> None:
        """Open the fence: epoch goes odd (backup must already be written)."""
        self._fields["epoch"] = self.epoch + 1

    def end_commit(self, checksum: int) -> None:
        """Close the fence: stamp the new checksum, epoch back to even."""
        self._fields["checksum"] = checksum
        self._fields["epoch"] = self.epoch + 1

    def finish_recovery(self, checksum: int) -> None:
        """Close a fence left open by a dead writer (after rollback)."""
        self._fields["checksum"] = checksum
        self._fields["epoch"] = self.epoch + 1


class ProcessSegmentLock:
    """Cross-process publish lock over a segment's ``/dev/shm`` entry.

    The ``multiprocessing.Lock`` variant of ``SharedCHT.lock`` is
    implemented as an ``flock``, for one load-bearing reason: an
    ``flock`` is released by the kernel when its holder dies, while a
    SIGKILLed holder of a ``multiprocessing.Lock`` (a POSIX semaphore)
    leaves it locked forever and deadlocks every other publisher. Under
    this lock, "I acquired the lock and the epoch is odd" is a *proof*
    that the previous holder died mid-commit, which is what makes
    rollback-on-acquire sound.

    A per-object thread gate serializes same-process threads (two
    ``open()`` calls create distinct open file descriptions, so flock
    alone would also exclude them — but the gate gives FIFO fairness and
    keeps the fd bookkeeping single-threaded). Pickles by name, so specs
    can carry it through pool initializers.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._thread_gate = threading.Lock()
        self._fd: "int | None" = None

    def acquire(self) -> None:
        self._thread_gate.acquire()
        try:
            fd = os.open(str(_SHM_DIR / self.name), os.O_RDWR)
        except FileNotFoundError as error:
            self._thread_gate.release()
            raise SegmentMissingError(self.name) from error
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except BaseException:
            os.close(fd)
            self._thread_gate.release()
            raise
        self._fd = fd

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        self._thread_gate.release()

    def __enter__(self) -> "ProcessSegmentLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __getstate__(self) -> dict:
        return {"name": self.name}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._thread_gate = threading.Lock()
        self._fd = None


def publish_lock(mode: str, name: str) -> "threading.Lock | ProcessSegmentLock":
    """The publish lock for a segment, per its spec's ``lock_mode``."""
    if mode == "process":
        return ProcessSegmentLock(name)
    if mode == "thread":
        return threading.Lock()
    raise ValueError(f"lock_mode must be one of {LOCK_MODES}, got {mode!r}")


# -- snapshots ---------------------------------------------------------------


def write_snapshot(
    path: "str | os.PathLike", spec: "SharedCHTSpec", coll: "np.ndarray", noncoll: "np.ndarray"
) -> dict:
    """Atomically write a checksum-stamped bank snapshot; returns its meta.

    Write-rename protocol: the payload lands in a same-directory temp
    file (fsynced), then ``os.replace`` publishes it under the final
    name. A crash at any point leaves either the previous snapshot or a
    stray temp file — never a torn file that a restart would trust.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "format": _SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "size": spec.size,
        "s": spec.s,
        "u": spec.u,
        "counter_bits": spec.counter_bits,
        "lock_mode": spec.lock_mode,
        "checksum": counters_checksum(coll, noncoll),
    }
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, meta=np.array(json.dumps(meta)), coll=coll, noncoll=noncoll)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return meta


def read_snapshot(path: "str | os.PathLike") -> "tuple[dict, np.ndarray, np.ndarray]":
    """Read and validate a snapshot; returns ``(meta, coll, noncoll)``.

    Raises :class:`SegmentMissingError` when the file does not exist and
    :class:`SegmentCorruptionError` when it exists but fails any check
    (unreadable archive, wrong format/version, shape/meta mismatch, or a
    counter checksum that does not match the stamped one).
    """
    path = Path(path)
    if not path.exists():
        raise SegmentMissingError(str(path))
    try:
        with np.load(path, allow_pickle=False) as payload:
            meta = json.loads(str(payload["meta"][()]))
            coll = np.array(payload["coll"])
            noncoll = np.array(payload["noncoll"])
    except Exception as error:  # np.load raises a zoo of types on damage
        raise SegmentCorruptionError(str(path), f"unreadable snapshot: {error}") from error
    if not isinstance(meta, dict) or meta.get("format") != _SNAPSHOT_FORMAT:
        raise SegmentCorruptionError(str(path), "not a repro CHT snapshot")
    if meta.get("version") != SNAPSHOT_VERSION:
        raise SegmentCorruptionError(
            str(path), f"snapshot version {meta.get('version')} (this build reads {SNAPSHOT_VERSION})"
        )
    if coll.shape != (meta.get("size"),) or noncoll.shape != coll.shape:
        raise SegmentCorruptionError(str(path), "counter shapes disagree with snapshot meta")
    actual = counters_checksum(coll, noncoll)
    if actual != meta.get("checksum"):
        raise SegmentCorruptionError(
            str(path),
            f"snapshot checksum mismatch (stored {meta.get('checksum')}, computed {actual})",
        )
    return meta, coll, noncoll


# -- chaos helpers -----------------------------------------------------------


def inject_torn_commit(table: "SharedCHT", *, kill: bool = False) -> None:
    """Manufacture a torn commit: open the fence, scribble, never close it.

    With ``kill=True`` the process SIGKILLs itself *while holding the
    publish lock* mid-commit — the exact crash the flock + epoch fence
    protocol exists to survive (the ``kill_mid_publish`` fault kind).
    With ``kill=False`` the fence is simply left open (``torn_write``):
    the next fenced commit or :meth:`SharedCHT.verify` must roll the
    partial writes back to the pre-commit counters, bit-exactly.
    """
    with table.lock:
        table._recover_locked()
        table._begin_commit_locked()
        half = max(1, table.size // 2)
        table.coll[:half] += 1  # reprolint: disable=L001 -- chaos injector: the torn write IS the fault under test
        if kill:
            os.kill(os.getpid(), signal.SIGKILL)
    # Lock released with the epoch still odd: a torn commit, on purpose.


def inject_counter_corruption(table: "SharedCHT") -> None:
    """Scribble the live counters *without* touching the fence.

    Models bit-rot / a wild write from a buggy attacher: the epoch stays
    even (so rollback does not apply) but the stored checksum no longer
    matches — :meth:`SharedCHT.verify` must raise
    :class:`SegmentCorruptionError` and the serving layer must
    quarantine the bank (the ``corrupt_segment`` fault kind).
    """
    stride = max(1, table.size // 16)
    table.coll[::stride] += 7  # reprolint: disable=L001 -- chaos injector: models a wild unfenced write
