"""Shared-memory Collision History Table banks (``repro.sharedcht``).

The paper's COPU keeps *one* CHT read by every parallel collision-check
lane, so history learned on any query accelerates all the others
(Sec. III-D, IV). This package is that structure's multi-process software
image: counter banks in a ``multiprocessing`` shared-memory segment,
wrapped in the familiar :class:`~repro.core.cht.CollisionHistoryTable`
API.

Four pieces:

* :mod:`~repro.sharedcht.segments` — :class:`SegmentManager`, the
  mandatory lifecycle layer (create/attach/unlink; crashes never leak
  ``/dev/shm`` entries; reprolint F002 enforces routing through it);
* :mod:`~repro.sharedcht.durability` — the crash-consistency layer:
  versioned segment headers with a seqlock epoch fence + counter
  checksum, a backup-bank rollback journal, the crash-robust
  cross-process publish lock, and atomic checksum-stamped snapshots
  (reprolint F003 keeps raw buffer writes inside the fence);
* :mod:`~repro.sharedcht.table` — :class:`SharedCHT` and its picklable
  :class:`SharedCHTSpec`, the table-over-a-segment itself;
* :mod:`~repro.sharedcht.worker` — :class:`WorkerCHT`,
  :class:`CHTDeltas` and :class:`SharedPredictorSpec`, the
  sync-once/batch-deltas/merge-on-join protocol pool workers use so the
  shared banks never sit on the hot path.

Consumed by ``check_motions_sharded(shared_predictor=...)`` (offline
sharded sweeps) and the serving layer's scene-keyed table sharing
(``ServiceConfig(shared_cht=True)``).
"""

from .durability import (
    LOCK_MODES,
    ProcessSegmentLock,
    SegmentCorruptionError,
    SegmentMissingError,
)
from .segments import SegmentManager, default_manager
from .table import SharedCHT, SharedCHTSpec
from .worker import CHTDeltas, SharedPredictorSpec, WorkerCHT

__all__ = [
    "LOCK_MODES",
    "ProcessSegmentLock",
    "SegmentCorruptionError",
    "SegmentMissingError",
    "SegmentManager",
    "default_manager",
    "SharedCHT",
    "SharedCHTSpec",
    "WorkerCHT",
    "CHTDeltas",
    "SharedPredictorSpec",
]
