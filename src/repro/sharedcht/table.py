"""A Collision History Table over shared-memory counter banks.

:class:`SharedCHT` is a drop-in :class:`~repro.core.cht.CollisionHistoryTable`
whose COLL/NONCOLL counter columns live in a ``multiprocessing``
shared-memory segment instead of private numpy arrays — the software
image of the paper's COPU CHT banks, which are *one* physical structure
read by every parallel collision-detection lane. Any process that holds
the table's :class:`SharedCHTSpec` can attach and see (and warm) the same
counters, which is what lets collision history learned by one planning
query accelerate every other query against the same scene.

Semantics are bit-identical to the private table: every method is
inherited, and the only overrides keep the shared backing intact
(:meth:`~repro.core.cht.CollisionHistoryTable.merge_counts` already
commits in place) and serialize concurrent merges behind a lock. Traffic
statistics (``reads``/``writes``/``skipped_updates``) are per-handle —
each attached process accounts its own traffic, mirroring how the
hardware charges per-lane CHT accesses.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass

import numpy as np

from ..core.cht import COUNTER_BITS, CollisionHistoryTable
from .segments import SegmentManager, default_manager

__all__ = ["SharedCHTSpec", "SharedCHT"]

#: Counter cell dtype in the shared segment (matches the private table).
_CELL_DTYPE = np.int32


def _segment_nbytes(size: int) -> int:
    """Bytes needed for the two counter columns of a ``size``-entry table."""
    return 2 * size * np.dtype(_CELL_DTYPE).itemsize


@dataclass(frozen=True)
class SharedCHTSpec:
    """Everything needed to attach a shared table from another process.

    Picklable by construction (strings and numbers only), so it can ride
    through ``ProcessPoolExecutor`` initargs and serving config dumps.
    The segment holds raw counters; the spec carries the interpretation
    (table geometry and prediction strategy).
    """

    name: str
    size: int = 4096
    s: float = 0.0
    u: float = 1.0
    counter_bits: int = COUNTER_BITS

    def nbytes(self) -> int:
        """Size of the backing segment in bytes."""
        return _segment_nbytes(self.size)


class SharedCHT(CollisionHistoryTable):
    """A CHT whose counters are views over a shared-memory segment.

    Build with :meth:`create` (allocates and owns the segment) or
    :meth:`attach` (maps a segment some other handle created). The
    inherited API — ``predict``/``predict_many``/``probe_many``,
    ``update``/``update_many``, ``occupancy``, ``storage_bits``,
    ``reset`` — operates directly on the shared counters; ``merge_counts``
    (the saturating bincount commit) additionally takes :attr:`lock`, so
    concurrent delta publishes from several threads/processes serialize
    instead of losing increments.
    """

    def __init__(
        self,
        spec: SharedCHTSpec,
        segment: "np.ndarray | None" = None,
        *,
        rng: "np.random.Generator | None" = None,
        manager: SegmentManager | None = None,
        owner: bool = False,
    ) -> None:
        super().__init__(
            size=spec.size, s=spec.s, u=spec.u, rng=rng, counter_bits=spec.counter_bits
        )
        self.spec = spec
        self.owner = owner
        self._manager = manager if manager is not None else default_manager()
        #: Guards merge_counts; replace with a ``multiprocessing.Lock`` when
        #: several *processes* publish concurrently (merge-on-join runs
        #: publish only from the parent, where a thread lock suffices).
        self.lock: "threading.Lock | object" = threading.Lock()
        shm = self._manager.attach(spec.name) if segment is None else segment
        buffer = shm.buf if hasattr(shm, "buf") else shm
        cells = np.ndarray((2, spec.size), dtype=_CELL_DTYPE, buffer=buffer)
        if owner:
            cells.fill(0)
        # Rebind the private zero arrays allocated by the base constructor
        # to the shared views; every inherited method writes in place.
        self.coll = cells[0]
        self.noncoll = cells[1]

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        size: int = 4096,
        s: float = 0.0,
        u: float = 1.0,
        *,
        counter_bits: int = COUNTER_BITS,
        rng: "np.random.Generator | None" = None,
        manager: SegmentManager | None = None,
        name: str | None = None,
    ) -> "SharedCHT":
        """Allocate a fresh zeroed shared table and own its segment."""
        manager = manager if manager is not None else default_manager()
        probe = SharedCHTSpec(name="", size=size, s=s, u=u, counter_bits=counter_bits)
        segment = manager.create(probe.nbytes(), name=name)
        spec = SharedCHTSpec(
            name=segment.name, size=size, s=s, u=u, counter_bits=counter_bits
        )
        return cls(spec, segment, rng=rng, manager=manager, owner=True)

    @classmethod
    def attach(
        cls,
        spec: SharedCHTSpec,
        *,
        rng: "np.random.Generator | None" = None,
        manager: SegmentManager | None = None,
    ) -> "SharedCHT":
        """Map a table created elsewhere (same process or another one)."""
        return cls(spec, rng=rng, manager=manager, owner=False)

    # -- shared-specific behaviour ----------------------------------------

    def merge_counts(self, coll_counts: "np.ndarray", noncoll_counts: "np.ndarray") -> None:
        """Lock-guarded saturating commit into the shared counter banks."""
        with self.lock:  # type: ignore[union-attr]
            super().merge_counts(coll_counts, noncoll_counts)

    def counters_snapshot(self) -> "tuple[np.ndarray, np.ndarray]":
        """Private copies of (COLL, NONCOLL) — a worker's sync point."""
        with self.lock:  # type: ignore[union-attr]
            return self.coll.copy(), self.noncoll.copy()

    def detach(self) -> None:
        """Degrade to a private table: copy counters out, drop the views.

        After ``detach`` the handle keeps working (reads its last-seen
        counters) but no longer pins the segment, so the manager can close
        the mapping; the segment itself lives until the owner unlinks it.
        """
        self.coll = self.coll.copy()
        self.noncoll = self.noncoll.copy()
        self._manager.close(self.spec.name)

    def unlink(self) -> None:
        """Unlink the backing segment (owner only; name disappears)."""
        self.coll = self.coll.copy()
        self.noncoll = self.noncoll.copy()
        self._manager.unlink(self.spec.name)
