"""A Collision History Table over shared-memory counter banks.

:class:`SharedCHT` is a drop-in :class:`~repro.core.cht.CollisionHistoryTable`
whose COLL/NONCOLL counter columns live in a ``multiprocessing``
shared-memory segment instead of private numpy arrays — the software
image of the paper's COPU CHT banks, which are *one* physical structure
read by every parallel collision-detection lane. Any process that holds
the table's :class:`SharedCHTSpec` can attach and see (and warm) the same
counters, which is what lets collision history learned by one planning
query accelerate every other query against the same scene.

Semantics are bit-identical to the private table: every method is
inherited, and the overrides keep the shared backing intact and
crash-consistent. Each segment opens with a versioned header and a
rollback journal (:mod:`~repro.sharedcht.durability`), and every
mutating path — ``merge_counts``, ``update``, ``reset`` — runs as an
*epoch-fenced commit*: back the live counters up, bump the epoch odd,
mutate, stamp the new checksum, bump the epoch even. A publisher killed
at any instant leaves a state the next lock holder repairs exactly
(rollback to the backup), so shared banks never expose torn counters.

The publish lock comes in two modes (``SharedCHTSpec.lock_mode``):
``thread`` for single-process publishers (the serving layer) and
``process`` — a crash-robust flock — for concurrent multi-parent and
in-worker publishes. Traffic statistics (``reads``/``writes``/
``skipped_updates``) remain per-handle: each attached process accounts
its own traffic, mirroring how the hardware charges per-lane CHT
accesses.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from ..core.cht import COUNTER_BITS, CollisionHistoryTable
from .durability import (
    HEADER_NBYTES,
    LOCK_MODES,
    ProcessSegmentLock,
    SegmentCorruptionError,
    SegmentHeader,
    counters_checksum,
    publish_lock,
    read_snapshot,
    spec_fingerprint,
    write_snapshot,
)
from .segments import SegmentManager, default_manager

__all__ = ["SharedCHTSpec", "SharedCHT"]

#: Counter cell dtype in the shared segment (matches the private table).
_CELL_DTYPE = np.int32

_T = TypeVar("_T")


def _segment_nbytes(size: int) -> int:
    """Bytes needed for the two counter columns of a ``size``-entry table."""
    return 2 * size * np.dtype(_CELL_DTYPE).itemsize


@dataclass(frozen=True)
class SharedCHTSpec:
    """Everything needed to attach a shared table from another process.

    Picklable by construction (strings and numbers only), so it can ride
    through ``ProcessPoolExecutor`` initargs and serving config dumps.
    The segment holds raw counters; the spec carries the interpretation
    (table geometry, prediction strategy, and which publish lock guards
    commits — see :data:`~repro.sharedcht.durability.LOCK_MODES`).
    """

    name: str
    size: int = 4096
    s: float = 0.0
    u: float = 1.0
    counter_bits: int = COUNTER_BITS
    lock_mode: str = "thread"

    def __post_init__(self) -> None:
        if self.lock_mode not in LOCK_MODES:
            raise ValueError(f"lock_mode must be one of {LOCK_MODES}, got {self.lock_mode!r}")

    def nbytes(self) -> int:
        """Size of the backing segment: header + live banks + backup banks."""
        return HEADER_NBYTES + 2 * _segment_nbytes(self.size)


class SharedCHT(CollisionHistoryTable):
    """A CHT whose counters are views over a shared-memory segment.

    Build with :meth:`create` (allocates and owns the segment),
    :meth:`attach` (maps a segment some other handle created) or
    :meth:`load` (rehydrates a saved snapshot into a fresh segment). The
    inherited API — ``predict``/``predict_many``/``probe_many``,
    ``update``/``update_many``, ``occupancy``, ``storage_bits``,
    ``reset`` — operates directly on the shared counters; every mutating
    override additionally takes :attr:`lock` and runs as an epoch-fenced
    commit (backup → odd epoch → mutate → checksum → even epoch), so
    concurrent publishers serialize and a publisher crash at any instant
    is recoverable bit-exactly by the next lock holder.
    """

    def __init__(
        self,
        spec: SharedCHTSpec,
        segment: "np.ndarray | None" = None,
        *,
        rng: "np.random.Generator | None" = None,
        manager: SegmentManager | None = None,
        owner: bool = False,
    ) -> None:
        super().__init__(
            size=spec.size, s=spec.s, u=spec.u, rng=rng, counter_bits=spec.counter_bits
        )
        self.spec = spec
        self.owner = owner
        self._manager = manager if manager is not None else default_manager()
        #: Publish lock per ``spec.lock_mode``: a ``threading.Lock`` when
        #: all publishers share one process, or the crash-robust
        #: cross-process flock (:class:`ProcessSegmentLock`) when several
        #: parents/workers commit concurrently.
        self.lock: "threading.Lock | ProcessSegmentLock" = publish_lock(
            spec.lock_mode, spec.name
        )
        #: Torn commits this handle rolled back (crash-recovery events).
        self.rollbacks = 0
        shm = self._manager.attach(spec.name) if segment is None else segment
        buffer = shm.buf if hasattr(shm, "buf") else shm
        banks = np.ndarray(
            (4, spec.size), dtype=_CELL_DTYPE, buffer=buffer, offset=HEADER_NBYTES
        )
        header = SegmentHeader(buffer)
        if owner:
            banks.fill(0)
            header.initialize(spec_fingerprint(spec), counters_checksum(banks[0], banks[1]))
        else:
            header.validate_structure(spec_fingerprint(spec), spec.name)
        # Rebind the private zero arrays allocated by the base constructor
        # to the shared views; every inherited method writes in place.
        self.coll = banks[0]
        self.noncoll = banks[1]
        self._backup_coll: "np.ndarray | None" = banks[2]
        self._backup_noncoll: "np.ndarray | None" = banks[3]
        self._header: "SegmentHeader | None" = header

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        size: int = 4096,
        s: float = 0.0,
        u: float = 1.0,
        *,
        counter_bits: int = COUNTER_BITS,
        lock_mode: str = "thread",
        rng: "np.random.Generator | None" = None,
        manager: SegmentManager | None = None,
        name: str | None = None,
    ) -> "SharedCHT":
        """Allocate a fresh zeroed shared table and own its segment."""
        manager = manager if manager is not None else default_manager()
        probe = SharedCHTSpec(
            name="", size=size, s=s, u=u, counter_bits=counter_bits, lock_mode=lock_mode
        )
        segment = manager.create(probe.nbytes(), name=name)
        spec = SharedCHTSpec(
            name=segment.name,
            size=size,
            s=s,
            u=u,
            counter_bits=counter_bits,
            lock_mode=lock_mode,
        )
        return cls(spec, segment, rng=rng, manager=manager, owner=True)

    @classmethod
    def attach(
        cls,
        spec: SharedCHTSpec,
        *,
        rng: "np.random.Generator | None" = None,
        manager: SegmentManager | None = None,
    ) -> "SharedCHT":
        """Map a table created elsewhere (same process or another one)."""
        return cls(spec, rng=rng, manager=manager, owner=False)

    @classmethod
    def load(
        cls,
        path: "str | object",
        *,
        lock_mode: str | None = None,
        rng: "np.random.Generator | None" = None,
        manager: SegmentManager | None = None,
        name: str | None = None,
    ) -> "SharedCHT":
        """Rehydrate a :meth:`save` snapshot into a fresh owned segment.

        The snapshot's checksum is validated before a byte lands in the
        segment (a tampered or torn file raises
        :class:`~repro.sharedcht.durability.SegmentCorruptionError`), and
        the restore itself runs as a fenced commit, so the new bank is
        immediately verifiable. ``lock_mode`` overrides the saved mode
        (the snapshot records geometry; the lock is a deployment choice).
        """
        meta, coll, noncoll = read_snapshot(path)  # type: ignore[arg-type]
        table = cls.create(
            size=int(meta["size"]),
            s=float(meta["s"]),
            u=float(meta["u"]),
            counter_bits=int(meta["counter_bits"]),
            lock_mode=lock_mode if lock_mode is not None else str(meta["lock_mode"]),
            rng=rng,
            manager=manager,
            name=name,
        )

        def restore() -> None:
            table.coll[:] = coll
            table.noncoll[:] = noncoll

        table._fenced(restore)
        return table

    # -- the commit fence --------------------------------------------------

    def _recover_locked(self) -> bool:
        """Roll a torn commit back to its pre-commit counters (lock held).

        Sound because the backup columns are fully written *before* the
        epoch goes odd: whatever instant the dead writer was killed at,
        either the live counters are still untouched (epoch even — no
        recovery needed) or the backup holds the exact pre-commit state.
        """
        header = self._header
        if header is None or not header.torn:
            return False
        assert self._backup_coll is not None and self._backup_noncoll is not None
        np.copyto(self.coll, self._backup_coll)
        np.copyto(self.noncoll, self._backup_noncoll)
        header.finish_recovery(counters_checksum(self.coll, self.noncoll))
        self.rollbacks += 1
        return True

    def _begin_commit_locked(self) -> None:
        """Journal the live counters, then open the fence (lock held)."""
        assert self._header is not None
        assert self._backup_coll is not None and self._backup_noncoll is not None
        np.copyto(self._backup_coll, self.coll)
        np.copyto(self._backup_noncoll, self.noncoll)
        self._header.begin_commit()

    def _end_commit_locked(self) -> None:
        """Stamp the fresh checksum and close the fence (lock held)."""
        assert self._header is not None
        self._header.end_commit(counters_checksum(self.coll, self.noncoll))

    def _fenced(self, mutate: "Callable[[], _T]") -> _T:
        """Run one mutation as a crash-consistent commit under the lock.

        Rolls back any torn commit left by a dead publisher first, so
        ``mutate`` always starts from a consistent state. If ``mutate``
        itself dies (or raises) mid-write, the fence stays open and the
        *next* lock holder rolls its partial writes back — exactly the
        semantics a crashed publisher needs for bit-exact retries.
        """
        with self.lock:
            if self._header is None:  # detached: a plain private table again
                return mutate()
            self._recover_locked()
            self._begin_commit_locked()
            result = mutate()
            self._end_commit_locked()
            return result

    # -- shared-specific behaviour ----------------------------------------

    def merge_counts(self, coll_counts: "np.ndarray", noncoll_counts: "np.ndarray") -> None:
        """Epoch-fenced saturating commit into the shared counter banks."""

        def commit() -> None:
            CollisionHistoryTable.merge_counts(self, coll_counts, noncoll_counts)

        self._fenced(commit)

    def update(self, code: int, collided: bool) -> bool:
        """Epoch-fenced scalar update (the serving layer's direct path)."""

        def commit() -> bool:
            return CollisionHistoryTable.update(self, code, collided)

        return self._fenced(commit)

    def reset(self) -> None:
        """Epoch-fenced zeroing of both counter columns."""

        def commit() -> None:
            CollisionHistoryTable.reset(self)

        self._fenced(commit)

    def verify(self) -> bool:
        """Validate the bank under the lock; True if a torn commit was repaired.

        Order matters: first roll back any torn commit (that is recovery,
        not corruption), then check the structure and the counter
        checksum. A mismatch *after* recovery means the counters were
        mutated outside the fence (bit-rot, a wild write) and raises
        :class:`~repro.sharedcht.durability.SegmentCorruptionError` — the
        caller's cue to quarantine and rebuild the bank.
        """
        if self._header is None:
            return False
        with self.lock:
            rolled = self._recover_locked()
            self._header.validate_structure(spec_fingerprint(self.spec), self.spec.name)
            stored = self._header.checksum
            actual = counters_checksum(self.coll, self.noncoll)
            if stored != actual:
                raise SegmentCorruptionError(
                    self.spec.name,
                    f"counter-bank checksum mismatch (stored {stored:#010x}, "
                    f"computed {actual:#010x}) — counters were written outside "
                    "the epoch fence",
                )
            return rolled

    def counters_snapshot(self) -> "tuple[np.ndarray, np.ndarray]":
        """Private copies of (COLL, NONCOLL) — a worker's sync point.

        Taken under the lock *after* torn-commit recovery, so a worker
        restarted over the corpse of a mid-publish crash syncs from
        exactly the state the dead attempt started from.
        """
        with self.lock:
            if self._header is not None:
                self._recover_locked()
            return self.coll.copy(), self.noncoll.copy()

    def save(self, path: "str | object") -> dict:
        """Write an atomic, checksum-stamped snapshot; returns its meta.

        See :func:`~repro.sharedcht.durability.write_snapshot` for the
        write-rename protocol. Counters are copied under the lock (after
        recovery), so the snapshot is always a committed state.
        """
        with self.lock:
            if self._header is not None:
                self._recover_locked()
            coll = self.coll.copy()
            noncoll = self.noncoll.copy()
        return write_snapshot(path, self.spec, coll, noncoll)  # type: ignore[arg-type]

    # -- introspection -----------------------------------------------------

    @property
    def epoch(self) -> "int | None":
        """The segment's commit epoch (None once detached)."""
        return self._header.epoch if self._header is not None else None

    @property
    def stored_checksum(self) -> "int | None":
        """The checksum stamped at the last commit (None once detached)."""
        return self._header.checksum if self._header is not None else None

    # -- lifecycle ---------------------------------------------------------

    def _go_private(self) -> None:
        """Copy counters out and drop every view/lock tied to the segment."""
        self.coll = self.coll.copy()
        self.noncoll = self.noncoll.copy()
        self._backup_coll = None
        self._backup_noncoll = None
        self._header = None
        # The flock variant opens the (possibly now-unlinked) /dev/shm
        # entry on every acquire; a detached handle must not, so it
        # degrades to a plain thread lock alongside its private counters.
        self.lock = threading.Lock()

    def detach(self) -> None:
        """Degrade to a private table: copy counters out, drop the views.

        After ``detach`` the handle keeps working (reads its last-seen
        counters) but no longer pins the segment, so the manager can close
        the mapping; the segment itself lives until the owner unlinks it.
        """
        self._go_private()
        self._manager.close(self.spec.name)

    def unlink(self) -> None:
        """Unlink the backing segment (owner only; name disappears)."""
        self._go_private()
        self._manager.unlink(self.spec.name)
