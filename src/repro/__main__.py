"""``python -m repro`` dispatches to the CLI."""

import sys

from .cli import main

sys.exit(main())
